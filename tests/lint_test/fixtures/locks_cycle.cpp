// Lock-order analyzer fixture: the documented order itself forms a
// cycle (no code has to run for this to be a deadlock waiting to
// happen). Expected findings: one lock-order-cycle.
namespace fx {

class Trio {
 private:
  // lock-order: Trio::a_ -> Trio::b_
  // lock-order: Trio::b_ -> Trio::c_
  // lock-order: Trio::c_ -> Trio::a_
  Mutex a_;
  Mutex b_;
  Mutex c_;
};

}  // namespace fx
