// Lock-order analyzer fixture: a real nesting nobody documented.
// Expected findings: one undocumented-lock-nesting.
namespace fx {

class Db {
 public:
  void flush();

 private:
  Mutex cache_mutex_;
  Mutex io_mutex_;
};

void Db::flush() {
  const MutexLock cache(cache_mutex_);
  const MutexLock io(io_mutex_);
}

}  // namespace fx
