// Consistency-checker fixture (good tree): both keys documented with
// the right kinds, the one ctest label has a CI step.
void record_things(double level) {
  MECOFF_COUNTER_ADD("fx.good.events", 1);
  MECOFF_GAUGE_SET("fx.good.level", level);
}
