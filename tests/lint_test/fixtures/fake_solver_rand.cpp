// Lint fixture: unseeded / wall-clock randomness (rule nondeterminism).
// Expected findings: 4 (srand, time() seed, rand, std::random_device).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int roll_initial_assignment(int users) {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  int pick = std::rand() % users;
  std::random_device entropy;
  return pick ^ static_cast<int>(entropy() % 2);
}

}  // namespace fixture
