// Lock-order analyzer fixture: re-acquiring a mutex that is already
// held -- once directly under an outer guard, once from inside a
// `_locked` method whose suffix means the caller already holds it.
// Expected findings: two self-deadlock.
namespace fx {

class Queue {
 public:
  void push();
  void drain_locked() REQUIRES(mutex_);

 private:
  Mutex mutex_;
};

void Queue::push() {
  const MutexLock lock(mutex_);
  const MutexLock again(mutex_);
}

void Queue::drain_locked() {
  const MutexLock oops(mutex_);
}

}  // namespace fx
