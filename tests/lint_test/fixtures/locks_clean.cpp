// Lock-order analyzer fixture: a nesting that matches the documented
// order (member-call acquisition through a lock-owning member).
// Expected findings: none.
namespace fx {

class Inner {
 public:
  void poke();

 private:
  mutable Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

class Outer {
 public:
  void update();

 private:
  // lock-order: Outer::mutex_ -> Inner::mutex_
  mutable Mutex mutex_;
  Inner inner_;
};

void Outer::update() {
  const MutexLock lock(mutex_);
  inner_.poke();
}

void Inner::poke() {
  const MutexLock lock(mutex_);
  value_ = value_ + 1;
}

}  // namespace fx
