// Lint fixture: std::endl (rule no-endl).
// Expected findings: 1.
#include <iostream>

namespace fixture {

void report(int iterations) {
  std::cout << "iterations=" << iterations << std::endl;
  std::cout << "done\n";  // correct form, not flagged
}

}  // namespace fixture
