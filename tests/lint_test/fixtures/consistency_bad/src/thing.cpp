// Consistency-checker fixture (bad tree): one key never documented,
// one documented with the wrong kind.
void record_things(double seconds) {
  MECOFF_COUNTER_ADD("fx.bad.undocumented", 1);
  MECOFF_HISTOGRAM_RECORD("fx.bad.wrongkind", seconds);
}
