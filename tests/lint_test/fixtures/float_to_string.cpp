// Lint fixture: locale-dependent float serialization (rule float-format).
// Expected findings: 2 (std::to_string on a double, printf %f literal).
#include <cstdio>
#include <string>

namespace fixture {

std::string render(double objective) {
  // std::to_string follows LC_NUMERIC; a comma-decimal locale would
  // change the bytes.
  std::string out = std::to_string(objective);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "obj=%.6f", objective);
  out += buf;
  // Integer to_string is fine and must NOT be flagged:
  out += std::to_string(42);
  return out;
}

}  // namespace fixture
