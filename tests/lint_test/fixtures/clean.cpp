// Lint fixture: conforming code. Expected findings: 0.
//
// Mentions of std::mutex, rand(), %f, and std::endl in comments or
// string literals (below) must NOT be flagged — the linter strips
// comments, and only printf conversions inside literals count.
#include <string>

namespace fixture {

// A comment that says std::mutex and rand() and std::endl is fine.
std::string describe(int servers) {
  std::string out = "servers use std::mutex internally? no";  // prose
  out += std::to_string(servers);  // integer: allowed
  return out;
}

}  // namespace fixture
