// Lint fixture: raw std synchronization primitives (rule raw-sync).
// Expected findings: 2 (std::mutex member, std::scoped_lock use).
#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    std::scoped_lock lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
