// Lock-order analyzer fixture: a seeded inversion. The documented
// order is first_ -> second_, but backwards() nests the other way.
// Expected findings: one lock-order-inversion (at the inner
// acquisition) plus the lock-order-cycle the inverted edge creates in
// the documented-union-observed graph.
namespace fx {

class Pair {
 public:
  void backwards();

 private:
  // lock-order: Pair::first_ -> Pair::second_
  Mutex first_;
  Mutex second_;
};

void Pair::backwards() {
  const MutexLock hold(second_);
  const MutexLock inverted(first_);
}

}  // namespace fx
