// Lint fixture: direct observability types outside src/obs/
// (rule obs-facade). Expected findings: 2 (TraceSpan, MetricsRegistry).
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fixture {

double solve_once() {
  mecoff::obs::TraceSpan span("fixture.solve");
  auto& counter = mecoff::obs::MetricsRegistry::global().counter(
      "fixture.solves");
  counter.increment();
  return 0.0;
}

}  // namespace fixture
