// Linter fixture for the result-contract rule: a naked `.value()` on
// a freshly returned Result (no ok() check, not a `std::move(r)
// .value()` unwrap of a checked local), and a Result-returning call
// whose return value is dropped at statement position.
// Expected: 2 result-contract findings.
#include "common/result.hpp"

namespace fx {

Result<int> parse_widget(int raw);

int use_naked_value(int raw) {
  return parse_widget(raw).value();
}

void drop_result(int raw) {
  parse_widget(raw);
}

Result<int> parse_widget(int raw) {
  if (raw < 0) return Error("negative widget");
  return raw;
}

}  // namespace fx
