// Lock-order analyzer fixture: references to mutexes that do not
// exist -- a lock-order comment naming a ghost class and a GUARDED_BY
// pointing at an undeclared member. Expected findings: two
// unknown-mutex.
namespace fx {

class Real {
 public:
  void touch();

 private:
  // lock-order: Ghost::mutex_ -> Real::mutex_
  Mutex mutex_;
  int unprotected_ GUARDED_BY(phantom_) = 0;
};

void Real::touch() {
  const MutexLock lock(mutex_);
  unprotected_ = unprotected_ + 1;
}

}  // namespace fx
