#!/usr/bin/env python3
"""Self-test for tools/check_consistency.py.

Runs the consistency checker over a good and a bad fixture mini-tree
(each mimicking the repo layout: src/, docs/, tests/CMakeLists.txt,
.github/workflows/) and asserts the exact rule counts, then runs it
over the real tree and asserts a clean exit. Registered as the
`consistency_selftest` ctest (label: lint); stdlib only.
"""

from __future__ import annotations

import collections
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
CHECKER = os.path.join(ROOT, "tools", "check_consistency.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture mini-tree -> {rule: expected finding count}
EXPECTED = {
    "consistency_good": {},
    "consistency_bad": {
        "metric-undocumented": 1,
        "metric-kind-mismatch": 1,
        "metric-unknown": 1,
        "label-missing-ci-step": 1,
        "label-unknown": 1,
    },
}


def run_checker(root):
    proc = subprocess.run(
        [sys.executable, CHECKER, "--json", "--root", root],
        capture_output=True, text=True, check=False)
    if proc.returncode == 2:
        raise AssertionError(
            f"checker usage/IO error on {root}: {proc.stderr}")
    payload = json.loads(proc.stdout)
    assert payload.get("schema") == "mecoff.consistency.v1", (
        payload.get("schema"))
    return proc.returncode, payload


def main():
    failures = []

    for fixture, expected in sorted(EXPECTED.items()):
        code, payload = run_checker(os.path.join(FIXTURES, fixture))
        by_rule = collections.Counter(
            finding["rule"] for finding in payload["findings"])
        if dict(by_rule) != expected:
            failures.append(
                f"{fixture}: expected {expected}, got {dict(by_rule)}: "
                + "; ".join(
                    f"{f['file']}:{f['line']} [{f['rule']}] {f['message']}"
                    for f in payload["findings"]))
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(
                f"{fixture}: expected exit {want_code}, got {code}")

    # The bad tree's undocumented key must be pinned to its record site.
    _, payload = run_checker(os.path.join(FIXTURES, "consistency_bad"))
    undocumented = [f for f in payload["findings"]
                    if f["rule"] == "metric-undocumented"]
    if (not undocumented
            or not undocumented[0]["file"].endswith("thing.cpp")
            or undocumented[0]["line"] != 4):
        failures.append(
            "consistency_bad: expected metric-undocumented at "
            "src/thing.cpp:4, got " + json.dumps(undocumented))

    # The real tree must be clean and bidirectionally covered -- the
    # gate the CI step relies on.
    code, payload = run_checker(ROOT)
    if code != 0 or payload["count"] != 0:
        failures.append(
            f"real tree not consistent (exit {code}): " + "; ".join(
                f"{f['file']}:{f['line']} [{f['rule']}] {f['message']}"
                for f in payload["findings"]))
    if set(payload["recorded_keys"]) != set(payload["documented_keys"]):
        failures.append("recorded/documented key sets diverge")
    if set(payload["labels"]) != set(payload["ci_labels"]):
        failures.append(
            f"label sets diverge: cmake={payload['labels']} "
            f"ci={payload['ci_labels']}")

    if failures:
        print("consistency_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print("  - " + failure, file=sys.stderr)
        return 1
    print(f"consistency_selftest: OK (2 fixtures, "
          f"{len(payload['recorded_keys'])} keys, "
          f"{len(payload['labels'])} labels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
