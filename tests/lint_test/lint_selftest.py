#!/usr/bin/env python3
"""Self-test for tools/lint_mecoff.py.

Runs the linter over each fixture and asserts the exact rule/finding
counts, then runs it over the real source tree and asserts a clean
exit. Registered as the `lint_selftest` ctest (label: lint); stdlib
only.
"""

from __future__ import annotations

import collections
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(ROOT, "tools", "lint_mecoff.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file -> {rule: expected finding count}
EXPECTED = {
    "unannotated_mutex.cpp": {"raw-sync": 2},
    "float_to_string.cpp": {"float-format": 2},
    "fake_solver_rand.cpp": {"nondeterminism": 4},
    "endl_flush.cpp": {"no-endl": 1},
    "raw_obs_macro.cpp": {"obs-facade": 2},
    "cast_party.cpp": {"reinterpret-cast": 1},
    "result_discard.cpp": {"result-contract": 2},
    "clean.cpp": {},
}


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, LINTER, "--json"] + args,
        capture_output=True, text=True, check=False)
    if proc.returncode == 2:
        raise AssertionError(
            f"linter usage/IO error on {args}: {proc.stderr}")
    payload = json.loads(proc.stdout)
    assert payload.get("schema") == "mecoff.lint.v1", payload.get("schema")
    return proc.returncode, payload


def main():
    failures = []

    for fixture, expected in sorted(EXPECTED.items()):
        path = os.path.join(FIXTURES, fixture)
        code, payload = run_linter([path])
        by_rule = collections.Counter(
            finding["rule"] for finding in payload["findings"])
        if dict(by_rule) != expected:
            failures.append(
                f"{fixture}: expected {expected}, got {dict(by_rule)}: "
                + "; ".join(
                    f"{f['file']}:{f['line']} [{f['rule']}] {f['message']}"
                    for f in payload["findings"]))
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(
                f"{fixture}: expected exit {want_code}, got {code}")

    # Findings must carry exact locations.
    _, payload = run_linter([os.path.join(FIXTURES, "endl_flush.cpp")])
    finding = payload["findings"][0]
    if finding["line"] != 8:
        failures.append(
            f"endl_flush.cpp: expected line 8, got {finding['line']}")

    # The real tree must be clean — the gate the CI step relies on.
    code, payload = run_linter(["--root", ROOT])
    if code != 0 or payload["count"] != 0:
        failures.append(
            f"source tree not clean (exit {code}): " + "; ".join(
                f"{f['file']}:{f['line']} [{f['rule']}]"
                for f in payload["findings"]))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"lint_selftest: {len(EXPECTED)} fixtures + tree scan OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
