// Fault-tolerant serving path: fault scripts, server failover with
// hysteresis, the degrade-don't-die solver chain, and the chaos
// harness's bit-identical replay guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/multiserver.hpp"
#include "mec/offloader.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_script.hpp"

namespace mecoff {
namespace {

using mec::FailoverController;
using mec::FailoverOptions;
using mec::FailoverStep;
using mec::MultiServerSystem;
using mec::Placement;
using mec::ServerSpec;
using mec::UserApp;
using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultScript;

UserApp netgen_user(std::uint64_t seed, std::size_t nodes = 60) {
  graph::NetgenParams gp;
  gp.nodes = nodes;
  gp.edges = nodes * 4;
  gp.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  user.unoffloadable.assign(nodes, false);
  user.unoffloadable[0] = true;
  return user;
}

MultiServerSystem make_system(std::size_t users, std::size_t servers = 3) {
  MultiServerSystem system;
  system.device.mobile_power = 1.0;
  system.device.mobile_capacity = 5.0;
  system.device.contention_factor = 0.5;
  for (std::size_t s = 0; s < servers; ++s)
    system.servers.push_back(ServerSpec{300.0 + 50.0 * s, 20.0, 8.0});
  for (std::size_t i = 0; i < users; ++i)
    system.users.push_back(netgen_user(100 + i));
  return system;
}

// ---------------------------------------------------------------- scripts

TEST(FaultScript, BuildersRecordEventsInInsertionOrder) {
  FaultScript script;
  script.crash_server(5.0, 1)
      .degrade_link(2.0, 0, 0.25)
      .recover_server(9.0, 1)
      .disconnect_user(2.0, 3)
      .restore_link(4.0, 0);
  ASSERT_EQ(script.size(), 5u);
  EXPECT_EQ(script.events()[0].kind, FaultKind::kServerCrash);
  EXPECT_EQ(script.events()[1].kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(script.events()[1].severity, 0.25);
}

TEST(FaultScript, OrderedNormalizesOutOfOrderAndKeepsTies) {
  FaultScript script;
  script.crash_server(5.0, 0)
      .disconnect_user(1.0, 7)
      .degrade_link(1.0, 1, 0.5);  // same instant as the disconnect
  const std::vector<FaultEvent> ordered = script.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].kind, FaultKind::kUserDisconnect);  // stable tie
  EXPECT_EQ(ordered[1].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(ordered[2].kind, FaultKind::kServerCrash);
}

TEST(FaultScript, RejectsHostileEventsWithTypedErrors) {
  FaultScript script;
  EXPECT_THROW(script.crash_server(-1.0, 0), PreconditionError);
  const double nan = std::nan("");
  EXPECT_THROW(script.crash_server(nan, 0), PreconditionError);
  EXPECT_THROW(script.degrade_link(1.0, 0, 0.0), PreconditionError);
  EXPECT_THROW(script.degrade_link(1.0, 0, 1.0), PreconditionError);
  EXPECT_THROW(script.degrade_link(1.0, 0, -2.0), PreconditionError);
  EXPECT_TRUE(script.empty());  // nothing slipped in
}

TEST(FaultScript, TextRoundTripIsExact) {
  FaultScript script;
  script.crash_server(1.0 / 3.0, 2)
      .degrade_link(0.1, 0, 0.123456789012345)
      .recover_server(97.25, 2)
      .disconnect_user(50.0, 11);
  const std::string text = script.to_text();
  const auto parsed = FaultScript::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  // Round trip through text reproduces the replay order EXACTLY,
  // doubles included (%.17g round-trips IEEE doubles).
  EXPECT_EQ(parsed.value().to_text(), text);
  const auto a = script.ordered();
  const auto b = parsed.value().ordered();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].severity, b[i].severity);
  }
}

TEST(FaultScript, ParseSkipsCommentsAndRejectsGarbage) {
  const auto ok = FaultScript::parse(
      "# a comment\n\nat 1 crash 0\n  # indented comment\nat 2 recover 0\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 2u);

  for (const char* junk :
       {"at x crash 0\n", "at -1 crash 0\n", "at 1 explode 0\n",
        "at 1 crash\n", "at 1 degrade 0 2.5\n", "at 1 degrade 0\n",
        "at 1 crash 0 trailing junk\n", "crash 0 at 1\n", "\x01\x02\n"}) {
    const auto r = FaultScript::parse(junk);
    EXPECT_FALSE(r.ok()) << junk;
  }
}

TEST(FaultScript, RandomScriptsAreSeedDeterministic) {
  sim::RandomFaultParams params;
  params.servers = 3;
  params.users = 5;
  params.events = 12;
  const FaultScript a = FaultScript::random(params);
  const FaultScript b = FaultScript::random(params);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_FALSE(a.empty());

  params.seed ^= 0xdead;
  const FaultScript c = FaultScript::random(params);
  EXPECT_NE(a.to_text(), c.to_text());  // astronomically unlikely to tie

  for (const FaultEvent& e : a.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, params.horizon);
  }
}

// --------------------------------------------------------------- failover

TEST(Failover, CrashMovesOrphansToSurvivorsAndKeepsSchemeValid) {
  const MultiServerSystem system = make_system(6);
  FailoverController controller(system);
  const std::size_t dead = 1;
  std::size_t orphans = 0;
  for (std::size_t u = 0; u < system.users.size(); ++u)
    if (controller.current().server_of_user[u] == dead) ++orphans;

  const auto step = controller.on_server_failed(dead);
  ASSERT_TRUE(step.ok()) << step.error().message;
  EXPECT_EQ(step.value().moved_users.size(), orphans);
  EXPECT_EQ(controller.alive_servers(), system.servers.size() - 1);
  for (std::size_t u = 0; u < system.users.size(); ++u) {
    const std::size_t home = controller.current().server_of_user[u];
    EXPECT_NE(home, dead);
    EXPECT_TRUE(controller.health()[home].alive);
    // Pinned function stays on the device through the re-solve.
    EXPECT_EQ(controller.current().scheme.placement[u][0], Placement::kLocal);
  }
  // A second crash of the same server is a clean typed error.
  EXPECT_FALSE(controller.on_server_failed(dead).ok());
}

TEST(Failover, LastServerDeathDegradesToAllLocalWithTypedError) {
  const MultiServerSystem system = make_system(4, 2);
  FailoverController controller(system);
  ASSERT_TRUE(controller.on_server_failed(0).ok());

  const auto step = controller.on_server_failed(1);
  EXPECT_FALSE(step.ok());  // the typed error reports the degrade
  EXPECT_TRUE(controller.all_local_fallback());
  EXPECT_EQ(controller.alive_servers(), 0u);
  for (std::size_t u = 0; u < system.users.size(); ++u)
    for (const Placement p : controller.current().scheme.placement[u])
      EXPECT_EQ(p, Placement::kLocal);
  // All-local still has a finite, evaluable objective.
  EXPECT_GT(controller.objective(), 0.0);
}

TEST(Failover, RecoveryLeavesAllLocalFallback) {
  const MultiServerSystem system = make_system(4, 2);
  FailoverController controller(system);
  ASSERT_TRUE(controller.on_server_failed(0).ok());
  (void)controller.on_server_failed(1);  // typed error; state degraded
  ASSERT_TRUE(controller.all_local_fallback());

  const auto step = controller.on_server_recovered(1);
  ASSERT_TRUE(step.ok()) << step.error().message;
  EXPECT_FALSE(controller.all_local_fallback());
  // Everyone re-attaches to the one live server and offloading resumes.
  std::size_t remote = 0;
  for (std::size_t u = 0; u < system.users.size(); ++u) {
    EXPECT_EQ(controller.current().server_of_user[u], 1u);
    for (const Placement p : controller.current().scheme.placement[u])
      if (p == Placement::kRemote) ++remote;
  }
  EXPECT_GT(remote, 0u);
}

TEST(Failover, HysteresisSuppressesLinkFlapReplacement) {
  const MultiServerSystem system = make_system(5);
  FailoverOptions options;
  options.hysteresis_margin = 1e9;  // nothing can clear this bar
  FailoverController controller(system, options);
  const mec::OffloadingScheme before = controller.current().scheme;
  const double healthy = controller.objective();

  for (int flap = 0; flap < 3; ++flap) {
    const auto down = controller.on_link_degraded(0, 0.05);
    ASSERT_TRUE(down.ok());
    EXPECT_FALSE(down.value().adopted);
    // Kept placements are still re-PRICED under the degraded link —
    // scaling bandwidth down can only raise the bill.
    EXPECT_GE(controller.objective(), healthy * (1.0 - 1e-12));
    const auto up = controller.on_link_restored(0);
    ASSERT_TRUE(up.ok());
  }
  EXPECT_GE(controller.suppressed_resolves(), 3u);
  // Placements never thrashed, and the restored bill is the healthy one.
  EXPECT_EQ(controller.current().scheme.placement, before.placement);
  EXPECT_NEAR(controller.objective(), healthy, 1e-9 * healthy);
}

TEST(Failover, ZeroMarginDegradeStaysConsistentAndBookkept) {
  const MultiServerSystem system = make_system(5);
  FailoverOptions options;
  options.hysteresis_margin = 0.0;  // adopt any strict improvement
  FailoverController controller(system, options);

  const auto step = controller.on_link_degraded(0, 0.01);
  ASSERT_TRUE(step.ok());
  // Adopted re-solve or suppressed keep — either way the bookkeeping
  // must be consistent and the state evaluable.
  if (!step.value().adopted) EXPECT_GE(controller.suppressed_resolves(), 1u);
  EXPECT_GT(controller.objective(), 0.0);
  EXPECT_TRUE(std::isfinite(controller.objective()));
  const auto restored = controller.on_link_restored(0);
  ASSERT_TRUE(restored.ok());
  // Degrading a dead server's link is a typed error, not UB.
  ASSERT_TRUE(controller.on_server_failed(0).ok());
  EXPECT_FALSE(controller.on_link_degraded(0, 0.5).ok());
}

TEST(Failover, DisconnectDropsUserAndNeverWorsensTheGroup) {
  const MultiServerSystem system = make_system(6);
  FailoverController controller(system);
  const auto step = controller.on_user_disconnected(2);
  ASSERT_TRUE(step.ok());
  EXPECT_FALSE(controller.user_active(2));
  EXPECT_EQ(controller.active_users(), system.users.size() - 1);
  // Load left; the kept-or-resolved group cannot cost more than before.
  EXPECT_LE(step.value().objective_after, step.value().objective_before);
  for (const Placement p : controller.current().scheme.placement[2])
    EXPECT_EQ(p, Placement::kLocal);
  EXPECT_FALSE(controller.on_user_disconnected(2).ok());  // double
}

// ------------------------------------------------------------------ chaos

FaultScript chaos_script() {
  FaultScript script;
  script.degrade_link(2.0, 0, 0.2)
      .crash_server(5.0, 1)
      .disconnect_user(6.5, 3)
      .restore_link(8.0, 0)
      .recover_server(12.0, 1)
      .crash_server(12.0, 1)  // same-instant re-crash: tie-break matters
      .recover_server(20.0, 1);
  return script;
}

TEST(Chaos, ScriptedScenarioReplaysBitIdentically) {
  const MultiServerSystem system = make_system(6);
  const FaultScript script = chaos_script();

  const auto first = sim::run_chaos(system, script);
  const auto second = sim::run_chaos(system, script);
  ASSERT_TRUE(first.ok()) << first.error().message;
  ASSERT_TRUE(second.ok()) << second.error().message;

  // The acceptance bar: recovery traces AND final schemes bit-identical
  // across runs of the same (system, script).
  EXPECT_EQ(first.value().trace, second.value().trace);
  EXPECT_EQ(first.value().final_result.scheme.placement,
            second.value().final_result.scheme.placement);
  EXPECT_EQ(first.value().final_result.server_of_user,
            second.value().final_result.server_of_user);
  EXPECT_EQ(first.value().faults_applied, second.value().faults_applied);
  EXPECT_EQ(first.value().faults_rejected, second.value().faults_rejected);

  // Every scripted fault is accounted for, one way or the other.
  EXPECT_EQ(first.value().faults_applied + first.value().faults_rejected,
            script.size());
  // init line + one line per fault + final line.
  EXPECT_EQ(first.value().trace.size(), script.size() + 2);
  EXPECT_FALSE(first.value().all_local_fallback);
}

TEST(Chaos, RandomScriptReplayIsAlsoDeterministic) {
  const MultiServerSystem system = make_system(5);
  sim::RandomFaultParams params;
  params.servers = system.servers.size();
  params.users = system.users.size();
  params.events = 10;
  const FaultScript script = FaultScript::random(params);

  const auto a = sim::run_chaos(system, script);
  const auto b = sim::run_chaos(system, script);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().trace, b.value().trace);
  EXPECT_EQ(a.value().final_result.scheme.placement,
            b.value().final_result.scheme.placement);
}

TEST(Chaos, InvalidSystemIsACleanError) {
  MultiServerSystem broken = make_system(2);
  broken.servers.clear();
  EXPECT_FALSE(sim::run_chaos(broken, chaos_script()).ok());
}

// ----------------------------------------------------- degrade-don't-die

mec::MecSystem single_server_system(std::size_t users) {
  mec::SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 20.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 300.0;
  mec::MecSystem system;
  system.params = p;
  for (std::size_t u = 0; u < users; ++u)
    system.users.push_back(netgen_user(300 + u, 80));
  return system;
}

TEST(DegradeChain, StalledEigensolveFallsBackToKlAndStaysValid) {
  const mec::MecSystem system = single_server_system(3);
  mec::PipelineOptions options;
  options.backend = mec::CutBackend::kSpectral;
  // Keep the sub-graphs big (no compression) so the cut step really
  // eigensolves, then inject a stall: zero tolerance is unreachable for
  // the shifted power iteration, so EVERY eigensolve hits its iteration
  // cap and comes back converged = false — exactly what a pathological
  // graph does.
  options.propagation.coupling_threshold = 1e18;
  options.spectral.fiedler.backend = spectral::EigenBackend::kShiftedPower;
  options.spectral.fiedler.tolerance = 0.0;
  options.spectral.fiedler.max_iterations = 50;

  mec::PipelineOffloader offloader(options);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));

  const auto& stats = offloader.last_stats();
  EXPECT_GT(stats.spectral_nonconverged, 0u);
  EXPECT_GT(stats.fallback_kl_cuts, 0u);  // KL rescued every stalled cut
  EXPECT_EQ(stats.fallback_all_remote, 0u);  // budget never ran out
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_TRUE(stats.degraded());
}

TEST(DegradeChain, ZeroDeadlineDegradesImmediatelyButValidly) {
  const mec::MecSystem system = single_server_system(3);
  mec::PipelineOptions options;
  options.deadline.seconds = 0.0;  // already expired at solve entry
  mec::PipelineOffloader offloader(options);
  const mec::OffloadingScheme scheme = offloader.solve(system);

  EXPECT_TRUE(scheme.valid_for(system));
  const auto& stats = offloader.last_stats();
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_GT(stats.fallback_all_remote, 0u);  // every sub-graph skipped
  EXPECT_EQ(stats.fallback_kl_cuts, 0u);     // no budget for recuts
  EXPECT_TRUE(stats.degraded());
}

TEST(DegradeChain, UnlimitedDeadlineReportsNoDegradation) {
  const mec::MecSystem system = single_server_system(2);
  mec::PipelineOffloader offloader;  // defaults: unlimited, tolerant
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));
  const auto& stats = offloader.last_stats();
  EXPECT_FALSE(stats.degraded());
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(DegradeChain, DegradedSchemesCostMoreButBothAreSchemes) {
  const mec::MecSystem system = single_server_system(2);
  mec::PipelineOffloader healthy;
  const double good =
      mec::evaluate(system, healthy.solve(system)).objective();

  mec::PipelineOptions rushed;
  rushed.deadline.seconds = 0.0;
  mec::PipelineOffloader degraded(rushed);
  const double bad =
      mec::evaluate(system, degraded.solve(system)).objective();
  // Degraded quality, not degraded validity.
  EXPECT_GE(bad, good * (1.0 - 1e-9));
}

}  // namespace
}  // namespace mecoff
