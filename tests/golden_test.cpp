// Golden-file round-trip tests (ctest label: golden).
//
// The two text formats the repo persists — OffloadingScheme and
// sim::FaultScript — are replay formats, not display strings: a file
// written today must parse bit-for-bit tomorrow. Each fixture under
// tests/golden/ is the CANONICAL serialization of a value that is also
// constructed programmatically here, and the tests assert the full
// triangle:
//
//   fixture bytes == to_text(programmatic value)      (writer is stable)
//   parse(fixture) == programmatic value              (reader is correct)
//   to_text(parse(fixture)) == fixture bytes          (round trip exact)
//
// A failure means the on-disk format changed; that is a breaking change
// for saved schemes/scripts and must be deliberate (update the fixture
// in the same commit and say so in the message).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "mec/scheme_io.hpp"
#include "sim/fault_script.hpp"

#ifndef MECOFF_GOLDEN_DIR
#error "build must define MECOFF_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace mecoff {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(MECOFF_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- OffloadingScheme -----------------------------------------------------

mec::OffloadingScheme canonical_scheme() {
  using mec::Placement;
  const Placement L = Placement::kLocal;
  const Placement R = Placement::kRemote;
  mec::OffloadingScheme scheme;
  scheme.placement = {{L, R, R, L}, {L, L, L, L}, {R, L, R, R}};
  return scheme;
}

TEST(GoldenScheme, WriterMatchesFixtureBytes) {
  EXPECT_EQ(mec::to_scheme_text(canonical_scheme()),
            read_fixture("scheme_basic.golden"));
}

TEST(GoldenScheme, ParserInvertsFixture) {
  const Result<mec::OffloadingScheme> parsed =
      mec::parse_scheme_text(read_fixture("scheme_basic.golden"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), canonical_scheme());
}

TEST(GoldenScheme, RoundTripIsByteIdentical) {
  const std::string fixture = read_fixture("scheme_basic.golden");
  const Result<mec::OffloadingScheme> parsed =
      mec::parse_scheme_text(fixture);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(mec::to_scheme_text(parsed.value()), fixture);
}

TEST(GoldenScheme, RoundTripSurvivesCommentsAndReordering) {
  // Comments, blank lines, and out-of-order user lines are accepted on
  // input but normalized away on output — re-serializing yields the
  // canonical bytes again.
  const std::string noisy =
      "# saved by mecoff_cli\n"
      "scheme users 3\n"
      "\n"
      "user 2 RLRR\n"
      "user 0 LRRL\n"
      "user 1 LLLL\n";
  const Result<mec::OffloadingScheme> parsed = mec::parse_scheme_text(noisy);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(mec::to_scheme_text(parsed.value()),
            read_fixture("scheme_basic.golden"));
}

// ---- sim::FaultScript -----------------------------------------------------

sim::FaultScript canonical_script() {
  sim::FaultScript script;
  script.crash_server(0.5, 0)
      .degrade_link(1.25, 1, 0.25)
      .recover_server(2.0, 0)
      .restore_link(3.5, 1)
      .disconnect_user(10.125, 7);
  return script;
}

TEST(GoldenFaultScript, WriterMatchesFixtureBytes) {
  EXPECT_EQ(canonical_script().to_text(),
            read_fixture("fault_script_basic.golden"));
}

TEST(GoldenFaultScript, ParserInvertsFixture) {
  const Result<sim::FaultScript> parsed =
      sim::FaultScript::parse(read_fixture("fault_script_basic.golden"));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().size(), canonical_script().size());
  const std::vector<sim::FaultEvent> got = parsed.value().ordered();
  const std::vector<sim::FaultEvent> want = canonical_script().ordered();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].describe(), want[i].describe()) << "event " << i;
  }
}

TEST(GoldenFaultScript, RoundTripIsByteIdentical) {
  const std::string fixture = read_fixture("fault_script_basic.golden");
  const Result<sim::FaultScript> parsed = sim::FaultScript::parse(fixture);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_text(), fixture);
}

TEST(GoldenFaultScript, OutOfOrderAddsNormalizeToFixtureBytes) {
  // to_text() emits replay (time) order, so an out-of-order build of
  // the same events serializes to the same canonical bytes.
  sim::FaultScript script;
  script.disconnect_user(10.125, 7)
      .crash_server(0.5, 0)
      .restore_link(3.5, 1)
      .degrade_link(1.25, 1, 0.25)
      .recover_server(2.0, 0);
  EXPECT_EQ(script.to_text(), read_fixture("fault_script_basic.golden"));
}

TEST(GoldenFaultScript, RandomScriptsRoundTripExactly) {
  // %.17g rendering must survive arbitrary doubles, not just the tidy
  // fixture values — the generated scripts exercise that.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sim::RandomFaultParams params;
    params.seed = seed;
    params.servers = 3;
    params.users = 5;
    params.events = 12;
    const sim::FaultScript script = sim::FaultScript::random(params);
    const Result<sim::FaultScript> reparsed =
        sim::FaultScript::parse(script.to_text());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
    EXPECT_EQ(reparsed.value().to_text(), script.to_text()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mecoff
