// Eigensolver tests: tridiagonal QL against analytic spectra, Lanczos
// and shifted power iteration against known graph Laplacian eigenvalues
// (path: λ_k = 2−2cos(kπ/n); cycle: 2−2cos(2πk/n); K_n: λ₂ = n).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/power_iteration.hpp"
#include "linalg/tridiagonal.hpp"

namespace mecoff::linalg {
namespace {

TEST(Tridiagonal, OneByOne) {
  const TridiagonalEigen e = tridiagonal_eigen({7.0}, {});
  ASSERT_EQ(e.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e.values[0], 7.0);
  EXPECT_DOUBLE_EQ(e.vectors(0, 0), 1.0);
}

TEST(Tridiagonal, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] → eigenvalues 1 and 3.
  const TridiagonalEigen e = tridiagonal_eigen({2.0, 2.0}, {1.0});
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(Tridiagonal, DiagonalMatrixSortsAscending) {
  const TridiagonalEigen e =
      tridiagonal_eigen({5.0, -1.0, 3.0}, {0.0, 0.0});
  EXPECT_NEAR(e.values[0], -1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  EXPECT_NEAR(e.values[2], 5.0, 1e-12);
}

TEST(Tridiagonal, PathLaplacianSpectrum) {
  // Path graph Laplacian is tridiagonal: eigenvalues 2−2cos(kπ/n).
  const std::size_t n = 12;
  Vec diag(n, 2.0);
  diag.front() = diag.back() = 1.0;
  Vec off(n - 1, -1.0);
  const TridiagonalEigen e = tridiagonal_eigen(diag, off);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(n));
    EXPECT_NEAR(e.values[k], expected, 1e-10);
  }
}

TEST(Tridiagonal, EigenpairsSatisfyDefinition) {
  const Vec diag{3.0, 1.0, 4.0, 1.0, 5.0};
  const Vec off{0.9, 0.2, 0.6, 0.3};
  const TridiagonalEigen e = tridiagonal_eigen(diag, off);
  for (std::size_t j = 0; j < diag.size(); ++j) {
    // T v = λ v, row by row.
    for (std::size_t i = 0; i < diag.size(); ++i) {
      double tv = diag[i] * e.vectors(i, j);
      if (i > 0) tv += off[i - 1] * e.vectors(i - 1, j);
      if (i + 1 < diag.size()) tv += off[i] * e.vectors(i + 1, j);
      EXPECT_NEAR(tv, e.values[j] * e.vectors(i, j), 1e-10);
    }
  }
}

TEST(Tridiagonal, EigenvectorsOrthonormal) {
  const Vec diag{1.0, 2.0, 3.0, 4.0};
  const Vec off{0.5, 0.5, 0.5};
  const TridiagonalEigen e = tridiagonal_eigen(diag, off);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      double d = 0;
      for (std::size_t i = 0; i < 4; ++i)
        d += e.vectors(i, a) * e.vectors(i, b);
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

double analytic_path_lambda2(std::size_t n) {
  return 2.0 - 2.0 * std::cos(std::numbers::pi / static_cast<double>(n));
}

TEST(Lanczos, PathGraphFiedlerValue) {
  const std::size_t n = 30;
  const SparseMatrix lap = laplacian(graph::path_graph(n));
  LanczosOptions opts;
  opts.num_pairs = 1;
  opts.deflate = {constant_unit(n)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_NEAR(r.pairs[0].value, analytic_path_lambda2(n), 1e-7);
}

TEST(Lanczos, CompleteGraphFiedlerValueIsN) {
  const std::size_t n = 15;
  const SparseMatrix lap = laplacian(graph::complete_graph(n));
  LanczosOptions opts;
  opts.deflate = {constant_unit(n)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.pairs[0].value, static_cast<double>(n), 1e-7);
}

TEST(Lanczos, CycleGraphFiedlerValue) {
  const std::size_t n = 24;
  const SparseMatrix lap = laplacian(graph::cycle_graph(n));
  LanczosOptions opts;
  opts.deflate = {constant_unit(n)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_TRUE(r.converged);
  const double expected =
      2.0 - 2.0 * std::cos(2.0 * std::numbers::pi / static_cast<double>(n));
  EXPECT_NEAR(r.pairs[0].value, expected, 1e-7);
}

TEST(Lanczos, ResidualIsSmall) {
  graph::NetgenParams p;
  p.nodes = 150;
  p.edges = 600;
  p.components = 1;
  p.seed = 77;
  const graph::WeightedGraph g = graph::netgen_style(p);
  const SparseMatrix lap = laplacian(g);
  LanczosOptions opts;
  opts.deflate = {constant_unit(g.num_nodes())};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_TRUE(r.converged);
  // ‖L v − λ v‖ explicitly.
  const Vec& v = r.pairs[0].vector;
  Vec lv = lap.multiply(v);
  axpy(-r.pairs[0].value, v, lv);
  // Remove null-space leakage before measuring.
  deflate(lv, constant_unit(g.num_nodes()));
  EXPECT_LT(norm2(lv), 1e-5 * lap.gershgorin_bound());
}

TEST(Lanczos, MultiplePairsAscending) {
  const std::size_t n = 20;
  const SparseMatrix lap = laplacian(graph::path_graph(n));
  LanczosOptions opts;
  opts.num_pairs = 3;
  opts.deflate = {constant_unit(n)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.pairs.size(), 3u);
  EXPECT_LE(r.pairs[0].value, r.pairs[1].value);
  EXPECT_LE(r.pairs[1].value, r.pairs[2].value);
  for (std::size_t k = 1; k <= 3; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(n));
    EXPECT_NEAR(r.pairs[k - 1].value, expected, 1e-6);
  }
}

TEST(Lanczos, TinyGraphs) {
  // 2-node graph: deflating the constant leaves a 1-dim space.
  const SparseMatrix lap = laplacian(graph::path_graph(2, 1.0, 3.0));
  LanczosOptions opts;
  opts.deflate = {constant_unit(2)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_NEAR(r.pairs[0].value, 6.0, 1e-9);  // λ₂ of weighted P2 = 2w
}

TEST(Lanczos, RequestMorePairsThanDimension) {
  const SparseMatrix lap = laplacian(graph::path_graph(3));
  LanczosOptions opts;
  opts.num_pairs = 10;
  opts.deflate = {constant_unit(3)};
  const LanczosResult r = lanczos_smallest(make_operator(lap), opts);
  EXPECT_LE(r.pairs.size(), 2u);  // only 2 non-deflated directions exist
}

TEST(PowerIteration, DominantPairOfDiagonal) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 5.0}, {2, 2, 2.0}});
  const PowerResult r = power_dominant(make_operator(m), {});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.pair.value, 5.0, 1e-6);
  EXPECT_NEAR(std::abs(r.pair.vector[1]), 1.0, 1e-4);
}

TEST(PowerIteration, ShiftedSmallestMatchesLanczos) {
  graph::NetgenParams p;
  p.nodes = 80;
  p.edges = 320;
  p.components = 1;
  p.seed = 5;
  const graph::WeightedGraph g = graph::netgen_style(p);
  const SparseMatrix lap = laplacian(g);
  const LinearOperator op = make_operator(lap);

  LanczosOptions lopts;
  lopts.deflate = {constant_unit(g.num_nodes())};
  const LanczosResult lr = lanczos_smallest(op, lopts);

  PowerOptions popts;
  popts.deflate = {constant_unit(g.num_nodes())};
  popts.max_iterations = 200000;
  popts.tolerance = 1e-10;
  const PowerResult pr =
      power_smallest_shifted(op, lap.gershgorin_bound(), popts);

  ASSERT_TRUE(lr.converged);
  EXPECT_NEAR(pr.pair.value, lr.pairs[0].value,
              1e-3 * (1.0 + lr.pairs[0].value));
}

TEST(PowerIteration, NullSpaceDetection) {
  // Without deflation the Laplacian's shifted power method converges to
  // eigenvalue 0 (the constant vector dominates c·I − L).
  const SparseMatrix lap = laplacian(graph::cycle_graph(6));
  const PowerResult r =
      power_smallest_shifted(make_operator(lap), lap.gershgorin_bound(), {});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.pair.value, 0.0, 1e-6);
}

}  // namespace
}  // namespace mecoff::linalg
