// Unit tests for Algorithm 1: the label rule, propagation termination,
// the merging compressor, and the parallel per-component pipeline.
#include <gtest/gtest.h>

#include <set>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "lpa/compressor.hpp"
#include "lpa/pipeline.hpp"
#include "lpa/propagation.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::lpa {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WeightedGraph;

TEST(Starter, PicksMaxDegreeNode) {
  // Star graph: the hub has the largest degree.
  const WeightedGraph g = graph::star_graph(6);
  EXPECT_EQ(select_starter(g), 0u);
}

TEST(Starter, EmptyGraph) {
  EXPECT_EQ(select_starter(WeightedGraph{}), graph::kInvalidNode);
}

TEST(Starter, TieBreaksToSmallestId) {
  const WeightedGraph g = graph::cycle_graph(4);  // all degree 2
  EXPECT_EQ(select_starter(g), 0u);
}

TEST(Propagation, HeavyEdgesShareLabels) {
  // Barbell: heavy cliques (w=10) joined by a light bridge (w=1).
  // With threshold 5, each clique collapses to one label; the bridge
  // does not propagate.
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 10.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_EQ(r.num_labels, 2u);
  for (NodeId v = 1; v < 4; ++v) EXPECT_EQ(r.labels[v], r.labels[0]);
  for (NodeId v = 5; v < 8; ++v) EXPECT_EQ(r.labels[v], r.labels[4]);
  EXPECT_NE(r.labels[0], r.labels[4]);
}

TEST(Propagation, ThresholdAboveAllWeightsIsolatesEveryNode) {
  const WeightedGraph g = graph::complete_graph(5, 1.0, 2.0);
  PropagationConfig config;
  config.coupling_threshold = 100.0;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_EQ(r.num_labels, 5u);
}

TEST(Propagation, ThresholdBelowAllWeightsUnifiesConnectedGraph) {
  const WeightedGraph g = graph::cycle_graph(7, 1.0, 5.0);
  PropagationConfig config;
  config.coupling_threshold = 0.5;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_EQ(r.num_labels, 1u);
}

TEST(Propagation, ThresholdIsStrict) {
  // Edge weight exactly equal to the threshold must NOT propagate.
  const WeightedGraph g = graph::path_graph(3, 1.0, 5.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_EQ(r.num_labels, 3u);
}

TEST(Propagation, RespectsMaxRounds) {
  const WeightedGraph g = graph::barbell_graph(6, 1.0, 9.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  config.max_rounds = 1;
  config.min_update_rate = 0.0;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.update_rates.size(), 1u);
}

TEST(Propagation, StopsWhenUpdateRateDrops) {
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 9.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  config.max_rounds = 50;
  config.min_update_rate = 0.01;
  const PropagationResult r = propagate_labels(g, config);
  EXPECT_LT(r.rounds, 50u);
  EXPECT_LE(r.update_rates.back(), 0.01);
}

TEST(Propagation, BfsAndDfsBothClusterBarbell) {
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 10.0);
  for (const TraversalPolicy policy :
       {TraversalPolicy::kBfs, TraversalPolicy::kDfs}) {
    PropagationConfig config;
    config.coupling_threshold = 5.0;
    config.policy = policy;
    EXPECT_EQ(propagate_labels(g, config).num_labels, 2u);
  }
}

TEST(Propagation, EmptyAndSingleNode) {
  EXPECT_EQ(propagate_labels(WeightedGraph{}, {}).num_labels, 0u);
  const WeightedGraph one = graph::path_graph(1);
  const PropagationResult r = propagate_labels(one, {});
  EXPECT_EQ(r.num_labels, 1u);
  EXPECT_EQ(r.labels[0], 0u);
}

TEST(Propagation, LabelsAreDense) {
  const WeightedGraph g = graph::barbell_graph(3, 1.0, 8.0);
  PropagationConfig config;
  config.coupling_threshold = 4.0;
  const PropagationResult r = propagate_labels(g, config);
  std::set<std::uint32_t> distinct(r.labels.begin(), r.labels.end());
  EXPECT_EQ(distinct.size(), r.num_labels);
  EXPECT_EQ(*distinct.begin(), 0u);
  EXPECT_EQ(*distinct.rbegin(), r.num_labels - 1);
}

TEST(Compressor, MergesSameLabelConnectedNodes) {
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 10.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  const PropagationResult prop = propagate_labels(g, config);
  const CompressionResult comp = compress_by_labels(g, prop.labels);
  EXPECT_EQ(comp.compressed.num_nodes(), 2u);
  EXPECT_EQ(comp.compressed.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(comp.compressed.edge_weight_between(0, 1), 1.0);
}

TEST(Compressor, ConservesNodeWeight) {
  const WeightedGraph g = graph::barbell_graph(5, 2.0, 9.0);
  PropagationConfig config;
  config.coupling_threshold = 4.0;
  const PropagationResult prop = propagate_labels(g, config);
  const CompressionResult comp = compress_by_labels(g, prop.labels);
  EXPECT_NEAR(comp.compressed.total_node_weight(), g.total_node_weight(),
              1e-9);
}

TEST(Compressor, ConservesEdgeWeightPlusAbsorbed) {
  const WeightedGraph g = graph::barbell_graph(5, 1.5, 7.0);
  PropagationConfig config;
  config.coupling_threshold = 4.0;
  const PropagationResult prop = propagate_labels(g, config);
  const CompressionResult comp = compress_by_labels(g, prop.labels);
  EXPECT_NEAR(comp.compressed.total_edge_weight() +
                  comp.stats.absorbed_edge_weight,
              g.total_edge_weight(), 1e-9);
}

TEST(Compressor, NeverMergesAcrossLabels) {
  const WeightedGraph g = graph::path_graph(4, 1.0, 10.0);
  // Hand labels: {0,1} and {2,3}.
  const CompressionResult comp = compress_by_labels(g, {7, 7, 9, 9});
  EXPECT_EQ(comp.compressed.num_nodes(), 2u);
  for (const auto& members : comp.members) {
    std::set<std::uint32_t> labels;
    for (const NodeId v : members) labels.insert(v < 2 ? 7u : 9u);
    EXPECT_EQ(labels.size(), 1u);
  }
}

TEST(Compressor, SameLabelDisconnectedNodesStaySeparate) {
  // Nodes 0 and 2 share a label but are not directly connected (and not
  // connected through a same-label path): they must NOT merge.
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  const WeightedGraph g = b.build();
  const CompressionResult comp = compress_by_labels(g, {5, 8, 5});
  EXPECT_EQ(comp.compressed.num_nodes(), 3u);
}

TEST(Compressor, MembersPartitionTheNodes) {
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 10.0);
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  const PropagationResult prop = propagate_labels(g, config);
  const CompressionResult comp = compress_by_labels(g, prop.labels);
  std::set<NodeId> seen;
  for (const auto& members : comp.members)
    for (const NodeId v : members) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_LT(comp.super_of[v], comp.compressed.num_nodes());
}

TEST(Compressor, IdentityWhenEveryLabelDistinct) {
  const WeightedGraph g = graph::cycle_graph(5);
  const CompressionResult comp =
      compress_by_labels(g, {0, 1, 2, 3, 4});
  EXPECT_EQ(comp.compressed.num_nodes(), 5u);
  EXPECT_EQ(comp.compressed.num_edges(), 5u);
  EXPECT_DOUBLE_EQ(comp.stats.absorbed_edge_weight, 0.0);
  EXPECT_DOUBLE_EQ(comp.stats.node_reduction(), 0.0);
}

TEST(Pipeline, RemovesUnoffloadableNodes) {
  const WeightedGraph g = graph::path_graph(5);
  const std::vector<bool> pinned{true, false, false, false, true};
  const CompressionPipelineResult r =
      compress_application(g, pinned, PropagationConfig{});
  EXPECT_EQ(r.offloadable.graph.num_nodes(), 3u);
  EXPECT_EQ(r.offloadable.to_parent, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Pipeline, SplitsByConnectivity) {
  // Removing the middle node splits the path into two components.
  const WeightedGraph g = graph::path_graph(5);
  const std::vector<bool> pinned{false, false, true, false, false};
  const CompressionPipelineResult r =
      compress_application(g, pinned, PropagationConfig{});
  EXPECT_EQ(r.components.size(), 2u);
}

TEST(Pipeline, DeclaredComponentsRefineSplit) {
  // A connected path of 4 with declared components {A,A,B,B} must yield
  // two sub-graphs even though the graph is connected.
  const WeightedGraph g = graph::path_graph(4);
  const std::vector<bool> pinned(4, false);
  const std::vector<std::uint32_t> declared{0, 0, 1, 1};
  const CompressionPipelineResult r = compress_application(
      g, pinned, PropagationConfig{}, nullptr, &declared);
  EXPECT_EQ(r.components.size(), 2u);
}

TEST(Pipeline, OriginalMembersMapThroughBothLayers) {
  const WeightedGraph g = graph::barbell_graph(3, 1.0, 10.0);
  const std::vector<bool> pinned{true, false, false, false, false, false};
  PropagationConfig config;
  config.coupling_threshold = 5.0;
  const CompressionPipelineResult r = compress_application(g, pinned, config);
  std::set<NodeId> all_members;
  for (std::size_t c = 0; c < r.components.size(); ++c) {
    const auto& comp = r.components[c];
    for (NodeId super = 0; super < comp.compression.compressed.num_nodes();
         ++super) {
      for (const NodeId orig : r.original_members(c, super)) {
        EXPECT_FALSE(pinned[orig]);  // pinned never reappears
        EXPECT_TRUE(all_members.insert(orig).second);
      }
    }
  }
  EXPECT_EQ(all_members.size(), 5u);
}

TEST(Pipeline, ParallelMatchesSerial) {
  graph::NetgenParams p;
  p.nodes = 200;
  p.edges = 800;
  p.components = 4;
  p.seed = 23;
  const WeightedGraph g = graph::netgen_style(p);
  const std::vector<bool> pinned(g.num_nodes(), false);
  PropagationConfig config;
  config.coupling_threshold = 10.0;

  const CompressionPipelineResult serial =
      compress_application(g, pinned, config);
  parallel::ThreadPool pool(4);
  const CompressionPipelineResult parallel_r =
      compress_application(g, pinned, config, &pool);

  const CompressionStats a = serial.aggregate_stats();
  const CompressionStats b = parallel_r.aggregate_stats();
  EXPECT_EQ(a.compressed_nodes, b.compressed_nodes);
  EXPECT_EQ(a.compressed_edges, b.compressed_edges);
  EXPECT_NEAR(a.absorbed_edge_weight, b.absorbed_edge_weight, 1e-9);
}

TEST(Pipeline, CompressionShrinksClusteredGraphs) {
  graph::NetgenParams p;
  p.nodes = 250;
  p.edges = 1214;
  p.seed = 1;
  const WeightedGraph g = graph::netgen_style(p);
  const std::vector<bool> pinned(g.num_nodes(), false);
  PropagationConfig config;
  // netgen default: light edges <= 10, heavy ~8x heavier.
  config.coupling_threshold = 10.0;
  const CompressionPipelineResult r = compress_application(g, pinned, config);
  const CompressionStats stats = r.aggregate_stats();
  EXPECT_LT(stats.compressed_nodes, stats.original_nodes / 2);
}

TEST(Pipeline, AllPinnedYieldsNothing) {
  const WeightedGraph g = graph::path_graph(4);
  const std::vector<bool> pinned(4, true);
  const CompressionPipelineResult r =
      compress_application(g, pinned, PropagationConfig{});
  EXPECT_EQ(r.offloadable.graph.num_nodes(), 0u);
  EXPECT_TRUE(r.components.empty());
}

}  // namespace
}  // namespace mecoff::lpa
