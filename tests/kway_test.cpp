// Tests for recursive-bisection k-way spectral partitioning.
#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "spectral/kway.hpp"

namespace mecoff::spectral {
namespace {

using graph::NodeId;
using graph::WeightedGraph;

TEST(Kway, SinglePartIsTrivial) {
  const WeightedGraph g = graph::grid_graph(3, 3);
  KwayOptions opts;
  opts.parts = 1;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_EQ(r.parts_used, 1u);
  EXPECT_DOUBLE_EQ(r.total_cut, 0.0);
  for (const auto p : r.part_of) EXPECT_EQ(p, 0u);
}

TEST(Kway, TwoPartsMatchBipartitioner) {
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 10.0);
  KwayOptions opts;
  opts.parts = 2;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_EQ(r.parts_used, 2u);
  EXPECT_DOUBLE_EQ(r.total_cut, 1.0);  // the bridge
}

TEST(Kway, LabelsAreDenseAndPartsNonEmpty) {
  graph::NetgenParams p;
  p.nodes = 80;
  p.edges = 300;
  p.components = 1;
  p.seed = 5;
  const WeightedGraph g = graph::netgen_style(p);
  KwayOptions opts;
  opts.parts = 5;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_LE(r.parts_used, 5u);
  EXPECT_GE(r.parts_used, 2u);
  std::set<std::uint32_t> seen(r.part_of.begin(), r.part_of.end());
  EXPECT_EQ(seen.size(), r.parts_used);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), r.parts_used - 1);
}

TEST(Kway, ReportedCutMatchesRecomputation) {
  graph::NetgenParams p;
  p.nodes = 60;
  p.edges = 240;
  p.seed = 9;
  const WeightedGraph g = graph::netgen_style(p);
  KwayOptions opts;
  opts.parts = 4;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_NEAR(r.total_cut, kway_cut_weight(g, r.part_of), 1e-9);
}

TEST(Kway, MorePartsNeverCutLess) {
  const WeightedGraph g = graph::grid_graph(6, 6);
  double prev = -1.0;
  for (const std::size_t k : {2u, 4u, 8u}) {
    KwayOptions opts;
    opts.parts = k;
    const double cut = kway_partition(g, opts).total_cut;
    EXPECT_GE(cut, prev - 1e-9);
    prev = cut;
  }
}

TEST(Kway, PartsCappedByNodeCount) {
  const WeightedGraph g = graph::path_graph(3);
  KwayOptions opts;
  opts.parts = 10;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_LE(r.parts_used, 3u);
  EXPECT_GE(r.parts_used, 1u);
}

TEST(Kway, FourClustersRecoveredFromFourParts) {
  // Four heavy cliques chained by light bridges: k = 4 should cut only
  // bridges.
  graph::GraphBuilder b;
  for (int c = 0; c < 4; ++c)
    for (int i = 0; i < 4; ++i) b.add_node(1.0);
  for (int c = 0; c < 4; ++c) {
    const NodeId base = static_cast<NodeId>(4 * c);
    for (NodeId i = 0; i < 4; ++i)
      for (NodeId j = i + 1; j < 4; ++j)
        b.add_edge(base + i, base + j, 20.0);
  }
  b.add_edge(3, 4, 1.0);
  b.add_edge(7, 8, 1.0);
  b.add_edge(11, 12, 1.0);
  const WeightedGraph g = b.build();

  KwayOptions opts;
  opts.parts = 4;
  const KwayResult r = kway_partition(g, opts);
  EXPECT_EQ(r.parts_used, 4u);
  EXPECT_DOUBLE_EQ(r.total_cut, 3.0);  // exactly the three bridges
  // Every clique uniform.
  for (int c = 0; c < 4; ++c)
    for (int i = 1; i < 4; ++i)
      EXPECT_EQ(r.part_of[4 * c + i], r.part_of[4 * c]);
}

TEST(Kway, EmptyGraph) {
  const KwayResult r = kway_partition(WeightedGraph{}, {});
  EXPECT_EQ(r.parts_used, 0u);
  EXPECT_TRUE(r.part_of.empty());
}

TEST(Kway, InvalidOptionsThrow) {
  KwayOptions opts;
  opts.parts = 0;
  EXPECT_THROW(kway_partition(graph::path_graph(3), opts),
               mecoff::PreconditionError);
}

}  // namespace
}  // namespace mecoff::spectral
