// Unit tests for the application model and the Soot-substitute DSL.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "appmodel/application.hpp"
#include "appmodel/dsl_parser.hpp"
#include "appmodel/synthetic_apps.hpp"
#include "graph/components.hpp"
#include "mec/offloader.hpp"

namespace mecoff::appmodel {
namespace {

TEST(Application, AddAndFindFunctions) {
  Application app("demo");
  const std::size_t a = app.add_function({"alpha", 10, false, "ui"});
  const std::size_t b = app.add_function({"beta", 20, true, "core"});
  EXPECT_EQ(app.num_functions(), 2u);
  EXPECT_EQ(app.find_function("alpha"), a);
  EXPECT_EQ(app.find_function("beta"), b);
  EXPECT_EQ(app.find_function("gamma"), Application::npos);
  EXPECT_EQ(app.function(b).component, "core");
}

TEST(Application, DuplicateNameRejected) {
  Application app;
  app.add_function({"f", 1, false, ""});
  EXPECT_THROW(app.add_function({"f", 2, false, ""}),
               mecoff::PreconditionError);
}

TEST(Application, ExchangeValidation) {
  Application app;
  app.add_function({"a", 1, false, ""});
  app.add_function({"b", 1, false, ""});
  EXPECT_THROW(app.add_exchange(0, 0, 5), mecoff::PreconditionError);
  EXPECT_THROW(app.add_exchange(0, 9, 5), mecoff::PreconditionError);
  EXPECT_THROW(app.add_exchange(0, 1, -1), mecoff::PreconditionError);
}

TEST(Application, ToGraphAccumulatesRepeatedExchanges) {
  Application app;
  app.add_function({"a", 3, false, ""});
  app.add_function({"b", 4, false, ""});
  app.add_exchange(0, 1, 5);
  app.add_exchange(1, 0, 7);  // same undirected pair
  const graph::WeightedGraph g = app.to_graph();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight_between(0, 1), 12.0);
  EXPECT_DOUBLE_EQ(g.node_weight(0), 3.0);
}

TEST(Application, MaskAndComponents) {
  Application app;
  app.add_function({"a", 1, true, "x"});
  app.add_function({"b", 1, false, "y"});
  app.add_function({"c", 1, false, "x"});
  const std::vector<bool> mask = app.unoffloadable_mask();
  EXPECT_EQ(mask, (std::vector<bool>{true, false, false}));
  const std::vector<std::uint32_t> comps = app.component_ids();
  EXPECT_EQ(comps[0], comps[2]);
  EXPECT_NE(comps[0], comps[1]);
}

constexpr const char* kGoodDsl = R"(
app Demo
component ui
  function main compute=5 unoffloadable
  function render compute=8 unoffloadable
component vision
  function detect compute=120
  function embed compute=200
call main detect data=64
call detect embed data=32
)";

TEST(DslParser, ParsesValidProgram) {
  const Result<Application> r = parse_app_dsl(kGoodDsl);
  ASSERT_TRUE(r.ok()) << (r.ok() ? std::string() : r.error().message);
  const Application& app = r.value();
  EXPECT_EQ(app.name(), "Demo");
  EXPECT_EQ(app.num_functions(), 4u);
  EXPECT_TRUE(app.function(app.find_function("main")).unoffloadable);
  EXPECT_FALSE(app.function(app.find_function("detect")).unoffloadable);
  EXPECT_DOUBLE_EQ(app.function(app.find_function("embed")).computation,
                   200.0);
  EXPECT_EQ(app.function(app.find_function("detect")).component, "vision");
  ASSERT_EQ(app.exchanges().size(), 2u);
  EXPECT_DOUBLE_EQ(app.exchanges()[0].amount, 64.0);
}

TEST(DslParser, CommentsAndBlankLinesIgnored) {
  const auto r = parse_app_dsl(
      "# top comment\napp X\nfunction f compute=1 # trailing\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_functions(), 1u);
}

TEST(DslParser, ErrorsCarryLineNumbers) {
  const auto r = parse_app_dsl("app X\nfunction f compute=1\nfrobnicate\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 3"), std::string::npos);
}

TEST(DslParser, RejectsUnknownFunctionInCall) {
  const auto r =
      parse_app_dsl("app X\nfunction f compute=1\ncall f ghost data=2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("ghost"), std::string::npos);
}

TEST(DslParser, RejectsSelfCall) {
  const auto r =
      parse_app_dsl("app X\nfunction f compute=1\ncall f f data=2\n");
  EXPECT_FALSE(r.ok());
}

TEST(DslParser, RejectsBadAttributes) {
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f compute=abc\n").ok());
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f turbo=1\n").ok());
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f compute=-3\n").ok());
  EXPECT_FALSE(
      parse_app_dsl("app X\nfunction a compute=1\nfunction b compute=1\n"
                    "call a b bytes=3\n")
          .ok());
}

TEST(DslParser, RejectsNonFiniteValues) {
  // std::from_chars happily parses "inf"/"nan", and neither compares
  // < 0, so without an explicit isfinite() check a NaN compute cost
  // would flow into every downstream energy sum. Regression for the
  // finiteness guard; the fuzz harness (fuzz/fuzz_dsl_parser.cpp)
  // asserts the same invariant on arbitrary input.
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f compute=inf\n").ok());
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f compute=nan\n").ok());
  EXPECT_FALSE(parse_app_dsl("app X\nfunction f compute=-inf\n").ok());
  EXPECT_FALSE(
      parse_app_dsl("app X\nfunction a compute=1\nfunction b compute=1\n"
                    "call a b data=inf\n")
          .ok());
  EXPECT_FALSE(
      parse_app_dsl("app X\nfunction a compute=1\nfunction b compute=1\n"
                    "call a b data=nan\n")
          .ok());
}

TEST(DslParser, CanonicalFormIsAFixedPoint) {
  // The scheme cache fingerprints canonical text, so serialization
  // must be stable: parse -> serialize -> parse -> serialize yields
  // identical bytes even when the input is unnormalized (comments,
  // no app directive, odd spacing).
  const auto parsed = parse_app_dsl(
      "# unnormalized input\nfunction   z   compute=0.5\n"
      "function y compute=2 unoffloadable\ncall z y data=7\n");
  ASSERT_TRUE(parsed.ok());
  const std::string canonical = to_app_dsl(parsed.value());
  const auto reparsed = parse_app_dsl(canonical);
  ASSERT_TRUE(reparsed.ok()) << canonical;
  EXPECT_EQ(to_app_dsl(reparsed.value()), canonical);
}

TEST(DslParser, RejectsDuplicateFunction) {
  const auto r =
      parse_app_dsl("app X\nfunction f compute=1\nfunction f compute=2\n");
  EXPECT_FALSE(r.ok());
}

TEST(DslParser, RejectsEmptyProgram) {
  EXPECT_FALSE(parse_app_dsl("").ok());
  EXPECT_FALSE(parse_app_dsl("app OnlyName\n").ok());
}

TEST(DslParser, RoundTripThroughSerializer) {
  const Result<Application> first = parse_app_dsl(kGoodDsl);
  ASSERT_TRUE(first.ok());
  const std::string serialized = to_app_dsl(first.value());
  const Result<Application> second = parse_app_dsl(serialized);
  ASSERT_TRUE(second.ok());
  const Application& a = first.value();
  const Application& b = second.value();
  ASSERT_EQ(a.num_functions(), b.num_functions());
  for (std::size_t i = 0; i < a.num_functions(); ++i) {
    EXPECT_EQ(a.function(i).name, b.function(i).name);
    EXPECT_DOUBLE_EQ(a.function(i).computation, b.function(i).computation);
    EXPECT_EQ(a.function(i).unoffloadable, b.function(i).unoffloadable);
    EXPECT_EQ(a.function(i).component, b.function(i).component);
  }
  ASSERT_EQ(a.exchanges().size(), b.exchanges().size());
}

TEST(SyntheticApps, FaceRecognitionShape) {
  const Application app = make_face_recognition_app();
  EXPECT_GE(app.num_functions(), 15u);
  // UI functions are pinned; the vision pipeline is not.
  EXPECT_TRUE(app.function(app.find_function("camera_capture")).unoffloadable);
  EXPECT_FALSE(app.function(app.find_function("embed_conv2")).unoffloadable);
  EXPECT_TRUE(graph::is_connected(app.to_graph()));
}

TEST(SyntheticApps, ArGameHasCoupledPhysicsCluster) {
  const Application app = make_ar_game_app();
  const graph::WeightedGraph g = app.to_graph();
  // Physics exchanges are the heavy ones.
  const auto narrow = app.find_function("phys_narrowphase");
  const auto solve = app.find_function("phys_solver");
  EXPECT_GE(g.edge_weight_between(static_cast<graph::NodeId>(narrow),
                                  static_cast<graph::NodeId>(solve)),
            50.0);
}

TEST(SyntheticApps, VideoAnalyticsIsLooselyCoupledChain) {
  const Application app = make_video_analytics_app();
  const graph::WeightedGraph g = app.to_graph();
  const auto denoise = app.find_function("denoise");
  const auto stabilize = app.find_function("stabilize");
  EXPECT_LE(g.edge_weight_between(static_cast<graph::NodeId>(denoise),
                                  static_cast<graph::NodeId>(stabilize)),
            10.0);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(SyntheticApps, AllThreeHavePinnedAndOffloadable) {
  for (const Application& app :
       {make_face_recognition_app(), make_ar_game_app(),
        make_video_analytics_app()}) {
    const std::vector<bool> mask = app.unoffloadable_mask();
    std::size_t pinned = 0;
    for (const bool b : mask)
      if (b) ++pinned;
    EXPECT_GT(pinned, 0u) << app.name();
    EXPECT_LT(pinned, mask.size()) << app.name();
  }
}

TEST(SyntheticApps, RandomAppRespectsParameters) {
  const Application app = make_random_app(100, 0.1, 42);
  EXPECT_EQ(app.num_functions(), 100u);
  EXPECT_TRUE(graph::is_connected(app.to_graph()));
  // Deterministic per seed.
  const Application again = make_random_app(100, 0.1, 42);
  EXPECT_EQ(app.exchanges().size(), again.exchanges().size());
}

}  // namespace
}  // namespace mecoff::appmodel

namespace mecoff::appmodel {
namespace {

TEST(SyntheticApps, VoiceAssistantShape) {
  const Application app = make_voice_assistant_app();
  EXPECT_TRUE(app.function(app.find_function("wake_word")).unoffloadable);
  EXPECT_FALSE(
      app.function(app.find_function("decoder_pass1")).unoffloadable);
  const graph::WeightedGraph g = app.to_graph();
  EXPECT_TRUE(graph::is_connected(g));
  // Decoder coupling dwarfs the text hand-off.
  const auto am = static_cast<graph::NodeId>(
      app.find_function("acoustic_model"));
  const auto d1 = static_cast<graph::NodeId>(
      app.find_function("decoder_pass1"));
  const auto d2 = static_cast<graph::NodeId>(
      app.find_function("decoder_rescore"));
  const auto intent = static_cast<graph::NodeId>(
      app.find_function("intent_classify"));
  EXPECT_GT(g.edge_weight_between(am, d1),
            20.0 * g.edge_weight_between(d2, intent));
}

TEST(SyntheticApps, SlamNavigationShape) {
  const Application app = make_slam_navigation_app();
  EXPECT_TRUE(app.function(app.find_function("camera_frames")).unoffloadable);
  EXPECT_FALSE(
      app.function(app.find_function("global_bundle_adjust")).unoffloadable);
  // Mapping is the heavy offloadable bulk.
  double mapping = 0.0;
  double tracking = 0.0;
  for (const FunctionInfo& f : app.functions()) {
    if (f.component == "mapping") mapping += f.computation;
    if (f.component == "tracking") tracking += f.computation;
  }
  EXPECT_GT(mapping, 3.0 * tracking);
  EXPECT_TRUE(graph::is_connected(app.to_graph()));
}

TEST(SyntheticApps, NewArchetypesSolveEndToEnd) {
  for (const Application& app :
       {make_voice_assistant_app(), make_slam_navigation_app()}) {
    mec::UserApp user;
    user.graph = app.to_graph();
    user.unoffloadable = app.unoffloadable_mask();
    user.components = app.component_ids();
    mec::MecSystem system{mec::SystemParams{}, {user}};
    mec::PipelineOptions opts;
    opts.propagation.coupling_threshold = 50.0;
    mec::PipelineOffloader offloader(opts);
    const mec::OffloadingScheme scheme = offloader.solve(system);
    EXPECT_TRUE(scheme.valid_for(system)) << app.name();
    EXPECT_GT(scheme.remote_count(0), 0u) << app.name();
  }
}

}  // namespace
}  // namespace mecoff::appmodel
