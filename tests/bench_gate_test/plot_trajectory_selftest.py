#!/usr/bin/env python3
"""Self-test for tools/plot_trajectory.py.

Builds a fake bench/ directory with two dated trajectory documents, one
bench_gate baseline (which the tool must skip, since both share the
BENCH_ filename prefix) and one unparseable file, then checks: the
merged text report orders runs by date and carries every phase, the
segment curve renders when present, --phase filters, --svg writes a
well-formed polyline plot, and the usage/empty-input paths exit 2.
Registered as the `plot_trajectory_selftest` ctest (label: lint);
stdlib only, all fixtures built in a temp dir.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
TOOL = os.path.join(ROOT, "tools", "plot_trajectory.py")


def trajectory_doc(p99, with_curve):
    phase = {"name": "steady", "clients": 4, "requests": 3000,
             "errors": 0, "mismatches": 0, "wedged": 0, "hits": 3000,
             "wall_seconds": 0.05, "p99_seconds": p99}
    if with_curve:
        phase["samples"] = [
            {"segment": 1, "requests": 1000, "wall_seconds": 0.02},
            {"segment": 2, "requests": 2000, "wall_seconds": 0.03},
            {"segment": 3, "requests": 3000, "wall_seconds": 0.05},
        ]
    drain = {"name": "drain", "clients": 4, "requests": 400,
             "errors": 0, "mismatches": 0, "wedged": 0, "shed": 400,
             "wall_seconds": 0.01, "p99_seconds": p99 / 2}
    return {"schema": "mecoff.soak_trajectory.v1", "title": "bench_soak",
            "phases": [phase, drain],
            "totals": {"requests": 3400, "errors": 0, "mismatches": 0,
                       "wedged": 0, "unanswered": 0,
                       "wall_seconds": 0.06},
            "invariants_zero": ["totals.errors"]}


def run_tool(args):
    return subprocess.run([sys.executable, TOOL] + args,
                          capture_output=True, text=True, check=False)


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}" + (f": {detail}" if detail and not ok
                                    else ""))
    return ok


def main():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        def write(rel, text):
            path = os.path.join(tmp, rel)
            with open(path, "w") as out:
                out.write(text)
            return path

        old = write("BENCH_2026-08-01.json",
                    json.dumps(trajectory_doc(0.002, with_curve=False)))
        new = write("BENCH_2026-08-09.json",
                    json.dumps(trajectory_doc(0.001, with_curve=True)))
        baseline = write("BENCH_soak_baseline.json",
                         json.dumps({"schema": "mecoff.bench_gate.v1",
                                     "metrics": {}}))
        broken = write("BENCH_broken.json", "{not json")

        # Passed newest-first on purpose: the report must reorder by the
        # filename date.
        p = run_tool([new, broken, baseline, old])
        failures += not check("mixed input exits 0", p.returncode == 0,
                              p.stderr)
        failures += not check("baseline skipped with a note",
                              "BENCH_soak_baseline.json" in p.stdout and
                              "skipping" in p.stdout, p.stdout)
        failures += not check("unparseable input skipped",
                              "BENCH_broken.json" in p.stderr, p.stderr)
        failures += not check("both phases reported",
                              "== steady ==" in p.stdout and
                              "== drain ==" in p.stdout, p.stdout)
        failures += not check(
            "runs ordered by date",
            p.stdout.find("2026-08-01") < p.stdout.find("2026-08-09"),
            p.stdout)
        failures += not check("segment curve rendered",
                              "1000 2000 3000" in p.stdout, p.stdout)
        failures += not check("totals row present",
                              "== totals ==" in p.stdout and
                              "3400" in p.stdout, p.stdout)

        p = run_tool(["--phase", "drain", old, new])
        failures += not check("--phase filters the report",
                              p.returncode == 0 and
                              "== drain ==" in p.stdout and
                              "== steady ==" not in p.stdout, p.stdout)

        svg = os.path.join(tmp, "out.svg")
        p = run_tool(["--svg", svg, old, new])
        failures += not check("--svg exits 0", p.returncode == 0,
                              p.stderr)
        svg_text = open(svg).read() if os.path.exists(svg) else ""
        failures += not check("svg holds a polyline per phase",
                              svg_text.startswith("<svg") and
                              svg_text.count("<polyline") == 2, svg_text)

        p = run_tool([])
        failures += not check("no arguments exits 2", p.returncode == 2)
        p = run_tool([baseline])
        failures += not check("only non-trajectory inputs exits 2",
                              p.returncode == 2, p.stdout + p.stderr)
        p = run_tool(["--bogus", old])
        failures += not check("unknown option exits 2",
                              p.returncode == 2 and
                              "--bogus" in p.stderr, p.stderr)

    if failures:
        print(f"plot_trajectory_selftest: {failures} checks FAILED")
        return 1
    print("plot_trajectory_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
