#!/usr/bin/env python3
"""Self-test for tools/bench_gate.py.

Exercises the gate's full contract against synthetic fixtures: the
metrics path (regression), the soak-trajectory path (exact vs
presence-only tolerance assignment, zero-invariant enforcement even
under --update), and the actionable exit-2 diagnostics for missing or
unparseable baselines. Registered as the `bench_gate_selftest` ctest
(label: lint); stdlib only, all fixtures built in a temp dir.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
GATE = os.path.join(ROOT, "tools", "bench_gate.py")

METRICS_STDOUT = """some human table
[metrics] {"counters":{"mec.solve.count":7},\
"gauges":{"mec.solve.total_seconds":0.25}}
"""

def trajectory_stdout(requests=100, mismatches=0, wall=0.5, hits=90,
                      sample_requests=50):
    doc = {
        "schema": "mecoff.soak_trajectory.v1",
        "title": "bench_soak",
        "phases": [
            {"name": "steady", "clients": 4, "requests": requests,
             "errors": 0, "mismatches": mismatches, "wedged": 0,
             "hits": hits, "wall_seconds": wall, "p99_seconds": 0.001,
             "samples": [
                 {"segment": 1, "requests": sample_requests,
                  "hits": hits // 2, "wall_seconds": wall / 2},
                 {"segment": 2, "requests": requests, "hits": hits,
                  "wall_seconds": wall},
             ]},
        ],
        "totals": {"requests": requests, "errors": 0,
                   "mismatches": mismatches, "wedged": 0,
                   "unanswered": 0, "wall_seconds": wall},
        "invariants_zero": ["totals.errors", "totals.mismatches",
                            "totals.wedged", "totals.unanswered"],
    }
    return ("shape checks...\n[metrics] {\"counters\":{}}\n"
            "[trajectory] " + json.dumps(doc) + "\n")


def run_gate(args):
    return subprocess.run([sys.executable, GATE] + args,
                          capture_output=True, text=True, check=False)


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}" + (f": {detail}" if detail and not ok
                                    else ""))
    return ok


def main():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        def write(rel, text):
            path = os.path.join(tmp, rel)
            with open(path, "w") as out:
                out.write(text)
            return path

        # -- metrics path (regression) --------------------------------
        cand = write("metrics.out", METRICS_STDOUT)
        base = os.path.join(tmp, "baseline.json")
        p = run_gate(["--update", cand, base])
        failures += not check("metrics --update exits 0", p.returncode == 0,
                              p.stderr)
        spec = json.load(open(base))
        failures += not check(
            "metrics tolerances: counter exact, seconds presence-only",
            spec["metrics"]["counters.mec.solve.count"]["tol"] == 0.0 and
            spec["metrics"]["gauges.mec.solve.total_seconds"]["tol"] is None)
        p = run_gate([cand, base])
        failures += not check("metrics gate passes against itself",
                              p.returncode == 0, p.stdout + p.stderr)

        # -- missing baseline: exit 2 with the --update hint ----------
        p = run_gate([cand, os.path.join(tmp, "nonexistent.json")])
        failures += not check("missing baseline exits 2", p.returncode == 2)
        failures += not check("missing baseline names --update",
                              "--update" in p.stderr, p.stderr)

        # -- unparseable baseline: exit 2 with the --update hint ------
        broken = write("broken.json", "{not json")
        p = run_gate([cand, broken])
        failures += not check("unparseable baseline exits 2",
                              p.returncode == 2)
        failures += not check("unparseable baseline names --update",
                              "--update" in p.stderr, p.stderr)
        wrong = write("wrong_schema.json", json.dumps({"schema": "nope"}))
        p = run_gate([cand, wrong])
        failures += not check("wrong-schema baseline exits 2",
                              p.returncode == 2)
        failures += not check("wrong-schema baseline names --update",
                              "--update" in p.stderr, p.stderr)

        # -- trajectory path ------------------------------------------
        soak = write("soak.out", trajectory_stdout())
        soak_base = os.path.join(tmp, "soak_baseline.json")
        p = run_gate(["--update", soak, soak_base])
        failures += not check("trajectory --update exits 0",
                              p.returncode == 0, p.stderr)
        spec = json.load(open(soak_base))
        failures += not check(
            "trajectory tolerances: requests exact, hits/wall presence-only",
            spec["metrics"]["phases.steady.requests"]["tol"] == 0.0 and
            spec["metrics"]["totals.requests"]["tol"] == 0.0 and
            spec["metrics"]["phases.steady.hits"]["tol"] is None and
            spec["metrics"]["totals.wall_seconds"]["tol"] is None)
        failures += not check(
            "curve samples flatten: .requests exact, rest presence-only",
            spec["metrics"]["phases.steady.samples.0.requests"]["tol"]
            == 0.0 and
            spec["metrics"]["phases.steady.samples.1.requests"]["tol"]
            == 0.0 and
            spec["metrics"]["phases.steady.samples.0.hits"]["tol"] is None
            and
            spec["metrics"]["phases.steady.samples.0.wall_seconds"]["tol"]
            is None)
        p = run_gate([soak, soak_base])
        failures += not check("trajectory gate passes against itself",
                              p.returncode == 0, p.stdout + p.stderr)

        # Timing/provenance drift passes; load-shape drift fails.
        drift_ok = write("soak_timing.out",
                         trajectory_stdout(wall=9.9, hits=42))
        p = run_gate([drift_ok, soak_base])
        failures += not check("timing/provenance drift passes",
                              p.returncode == 0, p.stdout + p.stderr)
        drift_bad = write("soak_shape.out", trajectory_stdout(requests=99))
        p = run_gate([drift_bad, soak_base])
        failures += not check("load-shape drift fails", p.returncode == 1,
                              p.stdout)
        curve_bad = write("soak_curve.out",
                          trajectory_stdout(sample_requests=49))
        p = run_gate([curve_bad, soak_base])
        failures += not check("curve sample-position drift fails",
                              p.returncode == 1, p.stdout)

        # Zero-invariant violations fail, even under --update.
        broken_soak = write("soak_broken.out",
                            trajectory_stdout(mismatches=3))
        p = run_gate([broken_soak, soak_base])
        failures += not check("invariant violation fails the gate",
                              p.returncode == 1 and
                              "invariant violated" in p.stdout, p.stdout)
        p = run_gate(["--update", broken_soak,
                      os.path.join(tmp, "never_written.json")])
        failures += not check(
            "invariant violation blocks --update",
            p.returncode == 1 and
            not os.path.exists(os.path.join(tmp, "never_written.json")),
            p.stdout)

    if failures:
        print(f"bench_gate_selftest: {failures} checks FAILED")
        return 1
    print("bench_gate_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
