// Unit tests for the Kernighan–Lin baseline.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "kl/kernighan_lin.hpp"
#include "mincut/stoer_wagner.hpp"

namespace mecoff::kl {
namespace {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

Bipartition alternating_partition(const WeightedGraph& g) {
  Bipartition p;
  p.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.side[v] = v % 2;
  p.cut_weight = graph::cut_weight(g, p.side);
  return p;
}

TEST(KlRefine, NeverIncreasesCutWeight) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    graph::NetgenParams params;
    params.nodes = 60;
    params.edges = 240;
    params.components = 1;
    params.seed = seed;
    const WeightedGraph g = graph::netgen_style(params);
    const Bipartition initial = alternating_partition(g);
    const KlResult r = kernighan_lin_refine(g, initial, {});
    EXPECT_LE(r.partition.cut_weight, initial.cut_weight + 1e-9);
    EXPECT_NEAR(initial.cut_weight - r.partition.cut_weight, r.total_gain,
                1e-6);
  }
}

TEST(KlRefine, PreservesPartitionSizes) {
  const WeightedGraph g = graph::barbell_graph(6, 1.0, 9.0);
  const Bipartition initial = alternating_partition(g);
  const std::size_t size0 = initial.size(0);
  const KlResult r = kernighan_lin_refine(g, initial, {});
  EXPECT_EQ(r.partition.size(0), size0);
}

TEST(KlRefine, FixesBadBarbellPartition) {
  // Alternating start cuts every clique edge; KL must recover the
  // clique-vs-clique split whose cut is exactly the bridge.
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 10.0);
  const Bipartition initial = alternating_partition(g);
  KlOptions opts;
  opts.exact_pair_selection = true;
  const KlResult r = kernighan_lin_refine(g, initial, opts);
  EXPECT_DOUBLE_EQ(r.partition.cut_weight, 1.0);
}

TEST(KlRefine, ReportsPassCount) {
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 8.0);
  const KlResult r =
      kernighan_lin_refine(g, alternating_partition(g), {});
  EXPECT_GE(r.passes, 1u);
  EXPECT_LE(r.passes, KlOptions{}.max_passes);
}

TEST(KlRefine, AlreadyOptimalStaysPut) {
  const WeightedGraph g = graph::barbell_graph(4, 1.0, 8.0);
  Bipartition optimal;
  optimal.side = {0, 0, 0, 0, 1, 1, 1, 1};
  optimal.cut_weight = graph::cut_weight(g, optimal.side);
  const KlResult r = kernighan_lin_refine(g, optimal, {});
  EXPECT_DOUBLE_EQ(r.partition.cut_weight, 1.0);
  EXPECT_DOUBLE_EQ(r.total_gain, 0.0);
}

TEST(KlRefine, CandidateModeCloseToExact) {
  for (const std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    graph::NetgenParams params;
    params.nodes = 50;
    params.edges = 200;
    params.components = 1;
    params.seed = seed;
    const WeightedGraph g = graph::netgen_style(params);
    const Bipartition initial = alternating_partition(g);
    KlOptions exact;
    exact.exact_pair_selection = true;
    KlOptions approx;
    approx.candidate_limit = 8;
    const double cut_exact =
        kernighan_lin_refine(g, initial, exact).partition.cut_weight;
    const double cut_approx =
        kernighan_lin_refine(g, initial, approx).partition.cut_weight;
    EXPECT_LE(cut_approx, 1.5 * cut_exact + 10.0);
  }
}

TEST(KlRefine, InvalidInitialPartitionThrows) {
  const WeightedGraph g = graph::path_graph(4);
  Bipartition bad;
  bad.side = {0, 1};  // wrong length
  EXPECT_THROW(kernighan_lin_refine(g, bad, {}),
               mecoff::PreconditionError);
}

TEST(KlBipartitioner, BalancedSplit) {
  graph::NetgenParams params;
  params.nodes = 40;
  params.edges = 150;
  params.components = 1;
  params.seed = 10;
  const WeightedGraph g = graph::netgen_style(params);
  KernighanLinBipartitioner cutter;
  const Bipartition cut = cutter.bipartition(g);
  EXPECT_TRUE(graph::is_valid_partition(g, cut.side));
  EXPECT_EQ(cut.size(1), g.num_nodes() / 2);
}

TEST(KlBipartitioner, WithinFactorOfGlobalOptimumOnBarbell) {
  // KL is balance-constrained, so on an even barbell the optimum
  // balanced cut IS the global min cut.
  const WeightedGraph g = graph::barbell_graph(6, 1.0, 10.0);
  KlOptions opts;
  opts.exact_pair_selection = true;
  KernighanLinBipartitioner cutter(opts);
  const Bipartition cut = cutter.bipartition(g);
  EXPECT_DOUBLE_EQ(cut.cut_weight, mincut::stoer_wagner(g).cut_weight);
}

TEST(KlBipartitioner, DegenerateInputs) {
  KernighanLinBipartitioner cutter;
  EXPECT_TRUE(cutter.bipartition(graph::WeightedGraph{}).side.empty());
  const Bipartition one = cutter.bipartition(graph::path_graph(1));
  EXPECT_EQ(one.side.size(), 1u);
}

TEST(KlBipartitioner, DeterministicForFixedSeed) {
  graph::NetgenParams params;
  params.nodes = 30;
  params.edges = 100;
  params.seed = 44;
  const WeightedGraph g = graph::netgen_style(params);
  KernighanLinBipartitioner a;
  KernighanLinBipartitioner b;
  EXPECT_EQ(a.bipartition(g).side, b.bipartition(g).side);
}

TEST(KlBipartitioner, Name) {
  EXPECT_EQ(KernighanLinBipartitioner{}.name(), "kl");
}

}  // namespace
}  // namespace mecoff::kl
