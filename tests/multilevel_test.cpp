// Tests for heavy-edge-matching coarsening and the multilevel cutter.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "kl/multilevel.hpp"
#include "mincut/stoer_wagner.hpp"

namespace mecoff::kl {
namespace {

using graph::NodeId;
using graph::WeightedGraph;

TEST(HeavyEdgeMatching, HalvesAConnectedGraphRoughly) {
  graph::NetgenParams p;
  p.nodes = 100;
  p.edges = 400;
  p.components = 1;
  p.seed = 3;
  const WeightedGraph g = graph::netgen_style(p);
  const CoarseningStep step = heavy_edge_matching(g, 7);
  // Perfect matching halves; real graphs land in between.
  EXPECT_GE(step.coarse.num_nodes(), 50u);
  EXPECT_LT(step.coarse.num_nodes(), 100u);
  EXPECT_TRUE(graph::validate(step.coarse).ok);
}

TEST(HeavyEdgeMatching, ConservesNodeWeight) {
  const WeightedGraph g = graph::barbell_graph(6, 2.0, 9.0);
  const CoarseningStep step = heavy_edge_matching(g, 11);
  EXPECT_NEAR(step.coarse.total_node_weight(), g.total_node_weight(),
              1e-9);
  for (const NodeId c : step.coarse_of)
    EXPECT_LT(c, step.coarse.num_nodes());
}

TEST(HeavyEdgeMatching, PrefersHeavyEdges) {
  // Path with one dominant edge: that pair must be matched together.
  graph::GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 100.0);  // dominant
  b.add_edge(2, 3, 1.0);
  const WeightedGraph g = b.build();
  bool merged_heavy_pair = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const CoarseningStep step = heavy_edge_matching(g, seed);
    if (step.coarse_of[1] == step.coarse_of[2]) merged_heavy_pair = true;
  }
  EXPECT_TRUE(merged_heavy_pair);
}

TEST(HeavyEdgeMatching, CrossEdgesSurviveContraction) {
  const WeightedGraph g = graph::cycle_graph(6, 1.0, 3.0);
  const CoarseningStep step = heavy_edge_matching(g, 2);
  // Total edge weight = surviving + contracted; nothing invented.
  double contracted = 0.0;
  for (const graph::Edge& e : g.edges())
    if (step.coarse_of[e.u] == step.coarse_of[e.v]) contracted += e.weight;
  EXPECT_NEAR(step.coarse.total_edge_weight() + contracted,
              g.total_edge_weight(), 1e-9);
}

TEST(Multilevel, FindsBarbellBridge) {
  // Keep the DEFAULT balance floor: loosening it admits degenerate
  // 15-vs-1 drains, which are genuine FM local optima (the floor is
  // what rules them out — the textbook reason FM is balance-constrained).
  const WeightedGraph g = graph::barbell_graph(8, 1.0, 10.0);
  MultilevelBipartitioner cutter;
  const graph::Bipartition cut = cutter.bipartition(g);
  EXPECT_DOUBLE_EQ(cut.cut_weight, 1.0);
}

TEST(Multilevel, ValidCutsOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    graph::NetgenParams p;
    p.nodes = 150;
    p.edges = 600;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    MultilevelBipartitioner cutter;
    const graph::Bipartition cut = cutter.bipartition(g);
    ASSERT_TRUE(graph::is_valid_partition(g, cut.side));
    EXPECT_NEAR(cut.cut_weight, graph::cut_weight(g, cut.side), 1e-9);
    EXPECT_GE(cut.size(0), 1u);
    EXPECT_GE(cut.size(1), 1u);
    EXPECT_GE(cutter.last_stats().levels, 1u);
    EXPECT_LE(cutter.last_stats().coarsest_nodes, 150u);
  }
}

TEST(Multilevel, RefinementBeatsCoarsestProjectionAlone) {
  // Multilevel with refinement must be no worse than plain FM on the
  // fine graph (same family, better starts), within generous slack.
  double ml_total = 0.0;
  double fm_total = 0.0;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    graph::NetgenParams p;
    p.nodes = 120;
    p.edges = 480;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    ml_total += MultilevelBipartitioner{}.bipartition(g).cut_weight;
    fm_total += FmBipartitioner{}.bipartition(g).cut_weight;
  }
  EXPECT_LE(ml_total, 1.2 * fm_total);
}

TEST(Multilevel, DegenerateInputs) {
  MultilevelBipartitioner cutter;
  EXPECT_TRUE(cutter.bipartition(WeightedGraph{}).side.empty());
  EXPECT_EQ(cutter.bipartition(graph::path_graph(1)).side.size(), 1u);
  EXPECT_EQ(cutter.name(), "multilevel");
}

TEST(Multilevel, SmallGraphSkipsCoarsening) {
  const WeightedGraph g = graph::path_graph(10);
  MultilevelOptions opts;
  opts.coarsest_size = 32;  // larger than the graph
  MultilevelBipartitioner cutter(opts);
  (void)cutter.bipartition(g);
  EXPECT_EQ(cutter.last_stats().levels, 0u);
  EXPECT_EQ(cutter.last_stats().coarsest_nodes, 10u);
}

}  // namespace
}  // namespace mecoff::kl
