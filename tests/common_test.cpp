// Unit tests for src/common: RNG, Result, strings, config, contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/config.hpp"
#include "common/contracts.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"

namespace mecoff {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // Child's stream differs from the parent's continuation.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
  EXPECT_THROW(rng.uniform(1.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.index(0), PreconditionError);
  EXPECT_THROW(rng.pareto(0.0, 1.0), PreconditionError);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Error("boom")};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r{Error("nope")};
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r(1);
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWsDropsRuns) {
  const auto parts = split_ws("  alpha \t beta\n gamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("edge 1 2", "edge"));
  EXPECT_FALSE(starts_with("ed", "edge"));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_FALSE(parse_double("3.25x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, ParseInt) {
  long long v = 0;
  EXPECT_TRUE(parse_int("-17", v));
  EXPECT_EQ(v, -17);
  EXPECT_FALSE(parse_int("17.5", v));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
}

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "users=100", "threshold=2.5", "name=test"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("users", 0), 100);
  EXPECT_DOUBLE_EQ(cfg.get_double("threshold", 0), 2.5);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
}

TEST(Config, FallbacksOnMissingOrMalformed) {
  Config cfg;
  cfg.set("bad", "xyz");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_int("bad", 7), 7);
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_TRUE(cfg.has("bad"));
}

TEST(Config, BoolParsing) {
  Config cfg;
  cfg.set("a", "true");
  cfg.set("b", "1");
  cfg.set("c", "no");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
}

TEST(Contracts, ExpectsThrowsPrecondition) {
  EXPECT_THROW(MECOFF_EXPECTS(1 == 2), PreconditionError);
  EXPECT_NO_THROW(MECOFF_EXPECTS(1 == 1));
}

TEST(Contracts, EnsuresThrowsInvariant) {
  EXPECT_THROW(MECOFF_ENSURES(false), InvariantError);
}

TEST(Contracts, MessageNamesLocation) {
  try {
    MECOFF_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace mecoff
