// Live-telemetry serving tests (ctest label: obs).
//
// Claims under test:
//   1. The Prometheus exposition is byte-stable — a hand-built snapshot
//      renders exactly the committed golden fixture (name mangling,
//      cumulative buckets, summary quantiles, number formatting).
//   2. The sliding-window quantile estimator agrees with an exact
//      sort-the-window oracle to within 1% at p50/p95/p99 on 10k
//      samples, including after the window has slid.
//   3. The flight recorder ring wraps correctly, classifies anomalies
//      (deadline fallback > failover > latency outlier), and writes a
//      post-mortem JSON dump when armed with a dump directory.
//   4. The embedded HTTP server answers /metrics, /varz, /healthz and
//      /flightz over a real loopback socket, flips /healthz to 503 when
//      the health callback degrades, and 404s unknown paths.
//   5. ObsEquivalence extension: serving OBSERVES — running the
//      telemetry server changes no placement bit of a solve.
//
// Like obs_test.cpp this file compiles under -DMECOFF_OBS=OFF; the
// socket-level tests degrade to asserting that start() fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "mec/offloader.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "obs/serve/exposition.hpp"
#include "obs/serve/http_parser.hpp"
#include "obs/serve/telemetry_server.hpp"
#include "obs/timeline.hpp"

#ifndef MECOFF_OBS_DISABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mecoff {
namespace {

using obs::FlightRecorder;
using obs::Quantiles;
using obs::SolveRecord;

// ---- Prometheus exposition ------------------------------------------------

TEST(Exposition, ManglesNamesToPrometheusGrammar) {
  EXPECT_EQ(obs::serve::prometheus_name("mec.solve.latency"),
            "mec_solve_latency");
  EXPECT_EQ(obs::serve::prometheus_name("already_legal:name"),
            "already_legal:name");
  EXPECT_EQ(obs::serve::prometheus_name("9starts.with digit!"),
            "_9starts_with_digit_");
}

/// A fully deterministic snapshot covering every instrument kind plus
/// the mangling edge cases; the golden fixture is its exact rendering.
obs::MetricsSnapshot golden_snapshot() {
  obs::MetricsSnapshot snap;
  snap.counters["mec.solve.count"] = 42;
  snap.counters["9weird name!"] = 1;
  snap.gauges["mec.solve.total_seconds"] = 0.125;
  obs::MetricsSnapshot::HistogramValue hist;
  hist.bounds = {0.001, 0.01, 0.1};
  hist.buckets = {1, 2, 3, 4};  // non-cumulative; renderer accumulates
  hist.count = 10;
  hist.sum = 1.5;
  snap.histograms["mec.solve.seconds"] = hist;
  obs::MetricsSnapshot::QuantilesValue q;
  q.count = 100;
  q.sum = 12.5;
  q.window_size = 64;
  q.p50 = 0.1;
  q.p95 = 0.25;
  q.p99 = 0.5;
  snap.quantiles["mec.solve.latency"] = q;
  return snap;
}

TEST(Exposition, MatchesGoldenFixtureByteForByte) {
  const std::string rendered =
      obs::serve::to_prometheus_text(golden_snapshot());
  const std::string path =
      std::string(MECOFF_GOLDEN_DIR) + "/prometheus_exposition.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden fixture " << path;
  std::ostringstream expected;
  expected << in.rdbuf();
  // Byte-for-byte: the exposition promises locale-independent,
  // deterministically ordered output (print both on mismatch).
  EXPECT_EQ(rendered, expected.str());
}

TEST(Exposition, HistogramBucketsAreCumulativeAndEndAtInf) {
  const std::string text =
      obs::serve::to_prometheus_text(golden_snapshot());
  // buckets {1,2,3,4} -> cumulative 1, 3, 6, and +Inf == count == 10.
  EXPECT_NE(text.find("mec_solve_seconds_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mec_solve_seconds_bucket{le=\"0.01\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mec_solve_seconds_bucket{le=\"0.1\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("mec_solve_seconds_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("mec_solve_seconds_count 10\n"), std::string::npos);
}

TEST(Exposition, EmptyQuantileWindowRendersNaNSamples) {
  obs::MetricsSnapshot snap;
  obs::MetricsSnapshot::QuantilesValue q;  // window_size == 0
  snap.quantiles["empty.window"] = q;
  const std::string text = obs::serve::to_prometheus_text(snap);
  EXPECT_NE(text.find("empty_window{quantile=\"0.5\"} NaN\n"),
            std::string::npos);
}

// ---- quantile estimator vs exact oracle -----------------------------------

/// numpy-style linear interpolation over an explicit sort — the oracle
/// the streaming window must agree with.
double oracle_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return obs::quantile_of_sorted(values, q);
}

TEST(QuantilesOracle, TracksExactSortWithinOnePercentOn10kSamples) {
  // Deterministic heavy-tailed samples (mt19937_64 is bit-specified by
  // the standard; the exp transform avoids distribution<> variance
  // across standard libraries).
  std::mt19937_64 rng(0x5EED);
  std::vector<double> samples;
  samples.reserve(10000);
  Quantiles window(10000);
  for (int i = 0; i < 10000; ++i) {
    const double u =
        static_cast<double>(rng()) / static_cast<double>(rng.max());
    const double value = std::exp(3.0 * u);  // in [1, e^3], skewed
    samples.push_back(value);
    window.record(value);
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = oracle_quantile(samples, q);
    const double streamed = window.quantile(q);
    EXPECT_NEAR(streamed, exact, 0.01 * exact)
        << "quantile " << q << " drifted past 1%";
  }
}

TEST(QuantilesOracle, SlidingWindowForgetsOldSamples) {
  std::mt19937_64 rng(77);
  std::vector<double> all;
  all.reserve(20000);
  Quantiles window(10000);
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(rng()) / static_cast<double>(rng.max());
    // First half low, second half shifted up: a slid window must see
    // only the recent regime.
    const double value = (i < 10000 ? 1.0 : 100.0) + u;
    all.push_back(value);
    window.record(value);
  }
  EXPECT_EQ(window.count(), 20000u);
  EXPECT_EQ(window.window_size(), 10000u);
  const std::vector<double> recent(all.begin() + 10000, all.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = oracle_quantile(recent, q);
    EXPECT_NEAR(window.quantile(q), exact, 0.01 * exact);
    EXPECT_GE(window.quantile(q), 100.0);  // old regime fully forgotten
  }
}

TEST(QuantilesOracle, InterpolatesBetweenOrderStatistics) {
  const double sorted[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(obs::quantile_of_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::quantile_of_sorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(obs::quantile_of_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(obs::quantile_of_sorted(sorted, 1.0 / 3.0), 2.0);
}

// ---- flight recorder ------------------------------------------------------

SolveRecord healthy_record(double total_seconds = 0.01) {
  SolveRecord r;
  r.users = 4;
  r.parts = 8;
  r.total_seconds = total_seconds;
  return r;
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestRecords) {
  FlightRecorder recorder(4);
  recorder.set_latency_trigger(0.0);  // disarm: only topology under test
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(recorder.record(healthy_record()), obs::AnomalyKind::kNone);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_records(), 10u);
  const std::vector<SolveRecord> ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest to newest, and only the newest four survive: seq 6..9.
  for (std::size_t i = 0; i < ring.size(); ++i)
    EXPECT_EQ(ring[i].seq, 6u + i);
}

TEST(FlightRecorderTest, ClassifiesDegradedSolvesAboveFailover) {
  FlightRecorder recorder(8);
  SolveRecord degraded = healthy_record();
  degraded.fallback_all_remote = 2;
  recorder.note_failover_event();  // folded into the same record...
  const obs::AnomalyKind kind = recorder.record(degraded);
  // ...but the degraded solve outranks it.
  EXPECT_EQ(kind, obs::AnomalyKind::kDeadlineFallback);
  EXPECT_EQ(recorder.anomaly_count(), 1u);
  const std::vector<SolveRecord> ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].failover_events, 1u);
  EXPECT_STREQ(ring[0].fallback_level(), "all_remote");
}

TEST(FlightRecorderTest, LatencyOutlierJudgedAgainstPriorWindow) {
  FlightRecorder recorder(8);
  recorder.set_latency_trigger(3.0, /*min_samples=*/8);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(recorder.record(healthy_record(0.010)),
              obs::AnomalyKind::kNone);
  // 10x the window's p95: fires. The sample is excluded from the window
  // it is judged against, so it cannot hide behind itself.
  EXPECT_EQ(recorder.record(healthy_record(0.100)),
            obs::AnomalyKind::kLatencyOutlier);
  // Back to normal: no anomaly even though the outlier is now IN the
  // window (3x margin absorbs one outlier's pull on p95).
  EXPECT_EQ(recorder.record(healthy_record(0.010)),
            obs::AnomalyKind::kNone);
}

TEST(FlightRecorderTest, AnomalyWritesPostMortemDump) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mecoff_flight_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FlightRecorder recorder(4);
  recorder.set_dump_dir(dir.string());
  (void)recorder.record(healthy_record());
  EXPECT_EQ(recorder.dump_count(), 0u);  // healthy: no dump

  SolveRecord bad = healthy_record();
  bad.deadline_expired = true;
  EXPECT_EQ(recorder.record(bad), obs::AnomalyKind::kDeadlineFallback);
  EXPECT_EQ(recorder.dump_count(), 1u);
  const std::string path = recorder.last_dump_path();
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("deadline_fallback"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in) << "dump file missing: " << path;
  std::ostringstream dumped;
  dumped << in.rdbuf();
  EXPECT_NE(dumped.str().find("\"schema\":\"mecoff.flight_recorder.v1\""),
            std::string::npos);
  EXPECT_NE(dumped.str().find("\"kind\":\"deadline_fallback\""),
            std::string::npos);
  // Both ring records are in the post-mortem, oldest first.
  EXPECT_NE(dumped.str().find("\"seq\":0"), std::string::npos);
  EXPECT_NE(dumped.str().find("\"seq\":1"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, ToJsonWithoutAnomalyHasNullTrigger) {
  FlightRecorder recorder(2);
  (void)recorder.record(healthy_record());
  const std::string json = recorder.to_json();
  EXPECT_EQ(json.find("\"anomaly\":null"), json.find("\"anomaly\":"));
  EXPECT_NE(json.find("\"records\":[{"), std::string::npos);
}

// Concurrency regression pinned by the thread-safety annotations: all
// recorder state (ring, seq counter, pending failover notes) is
// GUARDED_BY(mutex_), so records from racing solver threads and
// failover notes from a racing fault handler must never lose a count
// or double-assign a sequence number. Run under TSAN by the sanitize
// workflow.
TEST(FlightRecorderTest, ConcurrentRecordsAndFailoverNotesLoseNothing) {
  constexpr std::size_t kRecorders = 4;
  constexpr std::size_t kPerThread = 100;
  constexpr std::size_t kNotes = 64;
  FlightRecorder recorder(kRecorders * kPerThread + 1);  // no eviction
  recorder.set_latency_trigger(0.0);  // only counting under test

  std::vector<std::thread> threads;
  threads.reserve(kRecorders + 1);
  for (std::size_t t = 0; t < kRecorders; ++t)
    threads.emplace_back([&recorder] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        (void)recorder.record(healthy_record());
    });
  threads.emplace_back([&recorder] {
    for (std::size_t i = 0; i < kNotes; ++i) recorder.note_failover_event();
  });
  for (std::thread& thread : threads) thread.join();
  // A final record sweeps any notes still pending from the race.
  (void)recorder.record(healthy_record());

  const std::vector<SolveRecord> ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), kRecorders * kPerThread + 1);
  EXPECT_EQ(recorder.total_records(), kRecorders * kPerThread + 1);
  std::size_t folded = 0;
  std::vector<bool> seen_seq(ring.size(), false);
  for (const SolveRecord& rec : ring) {
    folded += rec.failover_events;
    ASSERT_LT(rec.seq, ring.size());
    EXPECT_FALSE(seen_seq[rec.seq]) << "duplicate seq " << rec.seq;
    seen_seq[rec.seq] = true;
  }
  EXPECT_EQ(folded, kNotes);  // every note folded into exactly one record
}

// ---- HTTP serving over a real socket --------------------------------------

#ifndef MECOFF_OBS_DISABLED

/// Minimal raw-socket HTTP client: one GET, read to EOF. Keeps the
/// in-tree tests free of a curl dependency (CI smoke uses curl).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryServerTest, ServesMetricsVarzAndFlightz) {
  obs::MetricsRegistry::global().counter("obs_serve_test.hits").add(3);
  obs::MetricsRegistry::global().quantiles("obs_serve_test.lat").record(0.5);

  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.error().message;
  EXPECT_TRUE(server.running());

  const std::string metrics = http_get(port.value(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("obs_serve_test_hits"), std::string::npos);
  EXPECT_NE(metrics.find("obs_serve_test_lat{quantile=\"0.5\"}"),
            std::string::npos);

  const std::string varz = http_get(port.value(), "/varz");
  EXPECT_NE(varz.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(varz.find("\"flight_recorder\":{"), std::string::npos);

  const std::string flightz = http_get(port.value(), "/flightz");
  EXPECT_NE(flightz.find("\"schema\":\"mecoff.flight_recorder.v1\""),
            std::string::npos);

  EXPECT_NE(http_get(port.value(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServerTest, HealthzFlipsTo503WithReasonWhenDegraded) {
  obs::serve::TelemetryServer server;
  std::atomic<bool> healthy{true};
  server.set_health_callback([&healthy] {
    obs::serve::HealthStatus s;
    if (!healthy.load()) {
      s.ok = false;
      s.reason = "degraded: 1/2 servers alive";
    }
    return s;
  });
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  const std::string up = http_get(port.value(), "/healthz");
  EXPECT_NE(up.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(up.find("ok"), std::string::npos);

  healthy.store(false);
  const std::string down = http_get(port.value(), "/healthz");
  EXPECT_NE(down.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(down.find("degraded: 1/2 servers alive"), std::string::npos);
  server.stop();
}

TEST(TelemetryServerTest, SurvivesGarbageRequests) {
  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok());
  // Raw garbage instead of HTTP.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port.value());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char garbage[] = "\x01\x02 not http at all\r\n\r\n";
  (void)::send(fd, garbage, sizeof(garbage) - 1, 0);
  char buffer[256];
  (void)::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  // And the server still answers a well-formed request afterwards.
  EXPECT_NE(http_get(port.value(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

// ---- Stalled/hostile peers and prompt shutdown ----------------------------
//
// Regression suite for the telemetry-server wedge: the server used to
// serve connections serially with an untimed blocking recv, so one
// silent peer blocked /healthz for everyone, and stop() only shut the
// listener down, hanging the join behind a peer mid-recv.

/// Open a raw loopback connection without sending anything.
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One POST with Content-Length, read to EOF.
std::string http_post(std::uint16_t port, const std::string& path,
                      const std::string& body) {
  const int fd = connect_raw(port);
  if (fd < 0) return "";
  const std::string request =
      "POST " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpRobustness, StalledClientDoesNotBlockOtherRequests) {
  obs::serve::HttpServer server;
  server.handle("/ping", [](const obs::serve::HttpRequest&) {
    return obs::serve::HttpResponse{200, "text/plain", "pong\n", {}};
  });
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  // A peer that opens a connection, dribbles half a request line, and
  // goes silent. With the serial accept loop this wedged the server
  // for the full recv (forever, pre-timeout).
  const int stalled = connect_raw(port.value());
  ASSERT_GE(stalled, 0);
  (void)::send(stalled, "GET /pi", 7, 0);

  // Requests on OTHER connections must be answered while the stalled
  // one sits there (concurrent connection workers).
  for (int i = 0; i < 3; ++i) {
    const std::string response = http_get(port.value(), "/ping");
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
    EXPECT_NE(response.find("pong"), std::string::npos);
  }
  ::close(stalled);
  server.stop();
}

TEST(HttpRobustness, SilentPeerIsTimedOutWithin408) {
  obs::serve::HttpServer server;
  server.set_io_timeout_ms(200);  // keep the test fast
  server.handle("/ping", [](const obs::serve::HttpRequest&) {
    return obs::serve::HttpResponse{200, "text/plain", "pong\n", {}};
  });
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  const auto start = std::chrono::steady_clock::now();
  const int fd = connect_raw(port.value());
  ASSERT_GE(fd, 0);
  (void)::send(fd, "GET /ping HTT", 13, 0);  // never finishes
  // The server must close the connection with 408 after its I/O
  // timeout, not hold the worker hostage.
  std::string response;
  char buffer[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  // Watchdog bound: one timeout period plus slack, nowhere near a hang.
  EXPECT_LT(elapsed, 5.0);
  server.stop();
}

TEST(HttpRobustness, StopJoinsPromptlyWhileConnectionMidRecv) {
  obs::serve::HttpServer server;
  // Deliberately long I/O timeout: a prompt stop() below proves the
  // fd shutdown path works, not that a timeout expired.
  server.set_io_timeout_ms(30000);
  server.handle("/ping", [](const obs::serve::HttpRequest&) {
    return obs::serve::HttpResponse{200, "text/plain", "pong\n", {}};
  });
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  const int stalled = connect_raw(port.value());
  ASSERT_GE(stalled, 0);
  (void)::send(stalled, "GET /", 5, 0);
  // Give the accept loop a beat to hand the fd to a worker, which then
  // blocks in recv waiting for the rest of the request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = std::chrono::steady_clock::now();
  server.stop();  // must shut the active connection down and join
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
  EXPECT_FALSE(server.running());
  ::close(stalled);
}

TEST(HttpRobustness, PostBodyRoundTripsAndOversizeIsRejected) {
  obs::serve::HttpServer server;
  server.handle("/echo", [](const obs::serve::HttpRequest& request) {
    return obs::serve::HttpResponse{200, "text/plain",
                                    request.method + ":" + request.body,
                                    {}};
  });
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  const std::string echoed =
      http_post(port.value(), "/echo", "hello body");
  EXPECT_NE(echoed.find("HTTP/1.1 200"), std::string::npos) << echoed;
  EXPECT_NE(echoed.find("POST:hello body"), std::string::npos);

  // Declared body over the 1 MiB cap → 413 without reading it.
  const int fd = connect_raw(port.value());
  ASSERT_GE(fd, 0);
  const std::string oversized =
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 3000000\r\n\r\n";
  (void)::send(fd, oversized.data(), oversized.size(), 0);
  std::string response;
  char buffer[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  server.stop();
}

TEST(HttpParser, MalformedContentLengthIsDistinctFromAbsent) {
  // A POST declaring "Content-Length: 12abc" must be answered 400, not
  // treated as body-less: the parser's kMalformed/kAbsent distinction
  // is what keeps a misdeclared body from being misread as a pipelined
  // follow-up request. Regression for the tri-state contract; the fuzz
  // harness (fuzz/fuzz_http_request.cpp) checks it on arbitrary bytes.
  using obs::serve::ContentLengthStatus;
  using obs::serve::HeadStatus;
  using obs::serve::ParsedHead;

  const std::string malformed =
      "POST /solve HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n";
  std::size_t declared = 0;
  EXPECT_EQ(obs::serve::parse_content_length(
                malformed, malformed.find("\r\n") + 2,
                malformed.find("\r\n\r\n"), declared),
            ContentLengthStatus::kMalformed);

  ParsedHead head;
  EXPECT_EQ(obs::serve::parse_request_head(
                malformed, malformed.find("\r\n\r\n"), head),
            HeadStatus::kBadContentLength);

  const std::string empty_value =
      "POST /solve HTTP/1.1\r\nContent-Length:   \r\n\r\n";
  EXPECT_EQ(obs::serve::parse_request_head(
                empty_value, empty_value.find("\r\n\r\n"), head),
            HeadStatus::kBadContentLength);

  const std::string absent = "POST /solve HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(obs::serve::parse_request_head(
                absent, absent.find("\r\n\r\n"), head),
            HeadStatus::kOk);
  EXPECT_EQ(head.content_length, 0u);
}

TEST(HttpParser, EmptyRequestTargetIsABadRequestLine) {
  // "GET  HTTP/1.1" (doubled space) and "GET ? HTTP/1.1" both produce
  // an empty path; routing an empty path makes no sense, so the parser
  // must 400 instead of returning kOk. Found by the fuzz harness's
  // non-empty-path invariant.
  using obs::serve::HeadStatus;
  obs::serve::ParsedHead head;
  for (const std::string& line :
       {std::string("GET  HTTP/1.1\r\n\r\n"),
        std::string("GET ? HTTP/1.1\r\n\r\n"),
        std::string("GET ?q=1 HTTP/1.1\r\n\r\n")}) {
    EXPECT_EQ(obs::serve::parse_request_head(
                  line, line.find("\r\n\r\n"), head),
              HeadStatus::kBadRequestLine)
        << line;
  }
  const std::string good = "GET /metrics?raw=1 HTTP/1.1\r\n\r\n";
  ASSERT_EQ(obs::serve::parse_request_head(
                good, good.find("\r\n\r\n"), head),
            HeadStatus::kOk);
  EXPECT_EQ(head.request.path, "/metrics");
  EXPECT_EQ(head.request.query, "raw=1");
}

TEST(HttpRobustness, NotFoundIsPlainAndRoutesLiveOnVarz) {
  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;

  // The 404 used to echo the whole route table to any probing client.
  const std::string missing = http_get(port.value(), "/definitely-not-here");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_EQ(missing.find("/metrics"), std::string::npos) << missing;
  EXPECT_EQ(missing.find("/healthz"), std::string::npos) << missing;

  // The route list moved to the operator surface.
  const std::string varz = http_get(port.value(), "/varz");
  EXPECT_NE(varz.find("\"routes\":["), std::string::npos);
  EXPECT_NE(varz.find("\"/metrics\""), std::string::npos);
  EXPECT_NE(varz.find("\"/healthz\""), std::string::npos);
  server.stop();
}

// ---- /timez: the timeline over live HTTP ----------------------------------

TEST(TelemetryServerTest, TimezAnswers503UntilATimelineIsAttached) {
  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;
  const std::string timez = http_get(port.value(), "/timez");
  EXPECT_NE(timez.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(timez.find("no timeline configured"), std::string::npos);
  server.stop();
}

/// Tick-mode documents promise byte-stability: a private registry with
/// fixed instrument content, sampled at deterministic request ticks,
/// must render exactly the committed golden fixture — locally via
/// to_json() AND as the /timez response body over a live socket.
TEST(TelemetryServerTest, TimezMatchesGoldenTickDocumentByteForByte) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.capacity = 4;
  options.mode = obs::Timeline::Mode::kTick;
  options.tick_period = 2;
  options.registry = &registry;
  obs::Timeline timeline(options);

  obs::Counter& requests = registry.counter("serve.solve.requests");
  obs::Gauge& entries = registry.gauge("serve.cache.entries");
  obs::Quantiles& latency = registry.quantiles("serve.solve.latency");

  requests.add(3);
  entries.set(1.0);
  latency.record(0.25, 101);
  timeline.note_request();
  timeline.note_request();  // sample at tick 2
  requests.add(5);
  entries.set(2.0);
  latency.record(0.75, 102);
  latency.record(0.5, 103);
  timeline.note_request();
  timeline.note_request();  // sample at tick 4

  const std::string rendered = timeline.to_json();
  // The determinism contract in print: no wall-clock field anywhere.
  EXPECT_EQ(rendered.find("wall"), std::string::npos);

  const std::string path =
      std::string(MECOFF_GOLDEN_DIR) + "/timez_tick.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden fixture " << path;
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str());

  obs::serve::TelemetryServer server;
  server.set_timeline(&timeline);
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;
  const std::string timez = http_get(port.value(), "/timez");
  EXPECT_NE(timez.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(timez.find("application/json"), std::string::npos);
  const std::size_t body_at = timez.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  // /timez serves the document verbatim — same bytes as the golden.
  EXPECT_EQ(timez.substr(body_at + 4), expected.str());
  server.stop();
}

/// The p99 postmortem loop: a deliberately slow request's correlation
/// id must be recoverable from the window-max exemplar — in the sample
/// the timeline retained and in the /timez document a scrape sees.
TEST(TelemetryServerTest, SlowRequestIdIsRecoverableFromTimezExemplar) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.mode = obs::Timeline::Mode::kManual;
  options.registry = &registry;
  obs::Timeline timeline(options);

  obs::Quantiles& latency = registry.quantiles("serve.solve.latency");
  for (std::uint64_t i = 1; i <= 20; ++i)
    latency.record(0.001 * static_cast<double>(i), 1000 + i);
  latency.record(0.9, 777);  // the slowed request
  latency.record(0.002, 2000);
  timeline.sample_now(22);

  const std::vector<obs::Timeline::Sample> samples = timeline.samples();
  ASSERT_EQ(samples.size(), 1u);
  const obs::Timeline::QuantPoint& point =
      samples.front().quantiles.at("serve.solve.latency");
  EXPECT_DOUBLE_EQ(point.max_value, 0.9);
  EXPECT_EQ(point.max_request_id, 777u);

  obs::serve::TelemetryServer server;
  server.set_timeline(&timeline);
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok()) << port.error().message;
  const std::string timez = http_get(port.value(), "/timez");
  EXPECT_NE(timez.find("\"max_request_id\":777"), std::string::npos);
  server.stop();
}

#else  // MECOFF_OBS_DISABLED

TEST(TelemetryServerTest, CompiledOutStartFailsLoudly) {
  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_FALSE(port.ok());
  EXPECT_NE(port.error().message.find("compiled out"), std::string::npos);
  EXPECT_FALSE(server.running());
}

#endif  // MECOFF_OBS_DISABLED

// ---- serving is observation only ------------------------------------------

mec::MecSystem serve_test_system(std::size_t users) {
  mec::SystemParams params;
  params.mobile_power = 1.0;
  params.transmit_power = 8.0;
  params.bandwidth = 50.0;
  params.mobile_capacity = 5.0;
  params.server_capacity = 500.0;
  std::vector<mec::UserApp> apps;
  apps.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    graph::NetgenParams p;
    p.nodes = 60;
    p.edges = 240;
    p.seed = 4000 + u;
    mec::UserApp app;
    app.graph = graph::netgen_style(p);
    apps.push_back(std::move(app));
  }
  return mec::MecSystem{params, std::move(apps)};
}

TEST(ObsEquivalence, ServingChangesNoPlacementBit) {
  const mec::MecSystem system = serve_test_system(4);
  mec::PipelineOptions opts;
  const mec::OffloadingScheme quiet =
      mec::PipelineOffloader(opts).solve(system);
#ifndef MECOFF_OBS_DISABLED
  obs::serve::TelemetryServer server;
  const Result<std::uint16_t> port = server.start(0);
  ASSERT_TRUE(port.ok());
  // Scrape concurrently with the solve below — a read-only observer.
  const std::string before = http_get(port.value(), "/metrics");
  EXPECT_FALSE(before.empty());
#endif
  const mec::OffloadingScheme served =
      mec::PipelineOffloader(opts).solve(system);
#ifndef MECOFF_OBS_DISABLED
  const std::string after = http_get(port.value(), "/metrics");
  EXPECT_FALSE(after.empty());
  server.stop();
#endif
  EXPECT_EQ(served, quiet);
}

}  // namespace
}  // namespace mecoff
