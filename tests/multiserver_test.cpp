// Tests for the multi-server extension.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/multiserver.hpp"

namespace mecoff::mec {
namespace {

SystemParams device_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.mobile_capacity = 5.0;
  p.contention_factor = 0.5;
  return p;
}

UserApp netgen_user(std::uint64_t seed, std::size_t nodes = 80) {
  graph::NetgenParams gp;
  gp.nodes = nodes;
  gp.edges = nodes * 4;
  gp.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  user.unoffloadable.assign(nodes, false);
  for (std::size_t v = 0; v < nodes; v += 10) user.unoffloadable[v] = true;
  return user;
}

MultiServerSystem two_server_system(std::size_t users) {
  MultiServerSystem system;
  system.device = device_params();
  system.servers = {ServerSpec{300.0, 20.0, 8.0},
                    ServerSpec{300.0, 20.0, 8.0}};
  for (std::size_t i = 0; i < users; ++i)
    system.users.push_back(netgen_user(100 + i));
  return system;
}

TEST(MultiServer, Validation) {
  MultiServerSystem system = two_server_system(2);
  EXPECT_TRUE(system.valid());
  system.servers.clear();
  EXPECT_FALSE(system.valid());
  system = two_server_system(2);
  system.servers[0].bandwidth = 0.0;
  EXPECT_FALSE(system.valid());
}

TEST(MultiServer, EveryUserGetsAServerAndValidScheme) {
  const MultiServerSystem system = two_server_system(6);
  MultiServerOffloader offloader;
  const MultiServerResult result = offloader.solve(system);
  ASSERT_EQ(result.server_of_user.size(), 6u);
  for (const std::size_t s : result.server_of_user)
    EXPECT_LT(s, system.servers.size());
  ASSERT_EQ(result.scheme.placement.size(), 6u);
  for (std::size_t u = 0; u < 6; ++u) {
    ASSERT_EQ(result.scheme.placement[u].size(),
              system.users[u].graph.num_nodes());
    // Pinned functions stay local.
    for (std::size_t v = 0; v < system.users[u].graph.num_nodes(); ++v) {
      if (system.users[u].unoffloadable[v]) {
        EXPECT_EQ(result.scheme.placement[u][v], Placement::kLocal);
      }
    }
  }
}

TEST(MultiServer, InitialAssignmentBalancesLoad) {
  MultiServerSystem system = two_server_system(8);
  MultiServerOptions opts;
  opts.rebalance_rounds = 0;  // isolate the LPT assignment
  MultiServerOffloader offloader(opts);
  const MultiServerResult result = offloader.solve(system);
  std::size_t count[2] = {0, 0};
  for (const std::size_t s : result.server_of_user) ++count[s];
  // Equal-capacity servers with near-equal users: 4/4 or 5/3 at worst.
  EXPECT_GE(count[0], 3u);
  EXPECT_GE(count[1], 3u);
}

TEST(MultiServer, CapacityWeightedAssignment) {
  MultiServerSystem system = two_server_system(9);
  system.servers[0].capacity = 900.0;  // 3x the other box
  system.servers[1].capacity = 300.0;
  MultiServerOptions opts;
  opts.rebalance_rounds = 0;
  const MultiServerResult result = MultiServerOffloader(opts).solve(system);
  std::size_t count[2] = {0, 0};
  for (const std::size_t s : result.server_of_user) ++count[s];
  EXPECT_GT(count[0], count[1]);  // big box takes more users
}

TEST(MultiServer, ConsolidationWinsAtEqualTotalCapacity) {
  // The congestion model normalizes by capacity² (M/M/1-style economy
  // of scale): one big box serves the same population with less queueing
  // than two half-size boxes. The solver must realize that advantage.
  MultiServerSystem split = two_server_system(10);
  split.servers = {ServerSpec{200.0, 20.0, 8.0},
                   ServerSpec{200.0, 20.0, 8.0}};
  MultiServerSystem merged = split;
  merged.servers = {ServerSpec{400.0, 20.0, 8.0}};

  MultiServerOffloader offloader;
  const double two = offloader.solve(split).objective();
  const double one = offloader.solve(merged).objective();
  EXPECT_LE(one, two * 1.001);
}

TEST(MultiServer, ObjectiveMatchesGroupOracle) {
  const MultiServerSystem system = two_server_system(5);
  const MultiServerResult result = MultiServerOffloader{}.solve(system);
  double energy = 0.0;
  double time = 0.0;
  for (std::size_t s = 0; s < system.servers.size(); ++s) {
    const SystemCost cost = evaluate_server_group(system, result, s);
    energy += cost.total_energy;
    time += cost.total_time;
  }
  EXPECT_NEAR(result.total_energy, energy, 1e-6 * (1.0 + energy));
  EXPECT_NEAR(result.total_time, time, 1e-6 * (1.0 + time));
}

TEST(MultiServer, RebalancingNeverHurts) {
  MultiServerSystem system = two_server_system(7);
  system.servers[1].bandwidth = 5.0;  // second box has a poor link
  MultiServerOptions without;
  without.rebalance_rounds = 0;
  MultiServerOptions with;
  with.rebalance_rounds = 3;
  const double before = MultiServerOffloader(without).solve(system)
                            .objective();
  const MultiServerResult rebalanced =
      MultiServerOffloader(with).solve(system);
  EXPECT_LE(rebalanced.objective(), before + 1e-9);
}

TEST(MultiServer, ServerLoadAccountsRemoteWeight) {
  const MultiServerSystem system = two_server_system(4);
  const MultiServerResult result = MultiServerOffloader{}.solve(system);
  double total_remote = 0.0;
  for (std::size_t u = 0; u < system.users.size(); ++u)
    for (std::size_t v = 0; v < system.users[u].graph.num_nodes(); ++v)
      if (result.scheme.placement[u][v] == Placement::kRemote)
        total_remote += system.users[u].graph.node_weight(v);
  double load_sum = 0.0;
  for (const double l : result.server_load) load_sum += l;
  EXPECT_NEAR(load_sum, total_remote, 1e-9);
}

TEST(MultiServer, SingleServerDegeneratesToPipeline) {
  // With one server the extension must match the plain pipeline.
  MultiServerSystem system = two_server_system(3);
  system.servers = {ServerSpec{300.0, 20.0, 8.0}};
  const MultiServerResult multi = MultiServerOffloader{}.solve(system);

  MecSystem flat;
  flat.params = device_params();
  flat.params.server_capacity = 300.0;
  flat.params.bandwidth = 20.0;
  flat.params.transmit_power = 8.0;
  flat.users = system.users;
  PipelineOffloader pipeline;
  const OffloadingScheme scheme = pipeline.solve(flat);
  const SystemCost cost = evaluate(flat, scheme);
  EXPECT_NEAR(multi.objective(), cost.objective(),
              1e-6 * (1.0 + cost.objective()));
}

}  // namespace
}  // namespace mecoff::mec
