// Unit tests for the end-to-end offloaders (pipeline with the three cut
// backends plus the reference solvers).
#include <gtest/gtest.h>

#include "appmodel/synthetic_apps.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {
namespace {

SystemParams default_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 50.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 500.0;
  return p;
}

UserApp app_from(const appmodel::Application& app) {
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  return user;
}

UserApp netgen_user(std::uint64_t seed, std::size_t nodes = 120) {
  graph::NetgenParams p;
  p.nodes = nodes;
  p.edges = nodes * 4;
  p.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(p);
  return user;
}

PipelineOptions options_for(CutBackend backend) {
  PipelineOptions opts;
  opts.backend = backend;
  opts.propagation.coupling_threshold = 10.0;
  return opts;
}

TEST(PipelineOffloader, ProducesValidSchemes) {
  MecSystem system{default_params(),
                   {app_from(appmodel::make_face_recognition_app())}};
  for (const CutBackend backend :
       {CutBackend::kSpectral, CutBackend::kMaxFlow,
        CutBackend::kKernighanLin}) {
    PipelineOffloader offloader(options_for(backend));
    const OffloadingScheme scheme = offloader.solve(system);
    EXPECT_TRUE(scheme.valid_for(system)) << offloader.name();
  }
}

TEST(PipelineOffloader, Names) {
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kSpectral)).name(),
            "spectral");
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kMaxFlow)).name(),
            "maxflow");
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kKernighanLin)).name(),
            "kl");
}

TEST(PipelineOffloader, PinnedFunctionsStayLocal) {
  const appmodel::Application app = appmodel::make_face_recognition_app();
  MecSystem system{default_params(), {app_from(app)}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  const OffloadingScheme scheme = offloader.solve(system);
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    if (app.function(i).unoffloadable) {
      EXPECT_EQ(scheme.placement[0][i], Placement::kLocal)
          << app.function(i).name;
    }
  }
}

TEST(PipelineOffloader, BeatsNaiveReferenceSolvers) {
  MecSystem system{default_params(), {netgen_user(1), netgen_user(2)}};
  PipelineOffloader spectral(options_for(CutBackend::kSpectral));
  const double obj =
      evaluate(system, spectral.solve(system)).objective();

  AllLocalOffloader all_local;
  AllRemoteOffloader all_remote;
  RandomOffloader random;
  EXPECT_LE(obj, evaluate(system, all_local.solve(system)).objective() + 1e-9);
  EXPECT_LE(obj,
            evaluate(system, all_remote.solve(system)).objective() + 1e-9);
  EXPECT_LE(obj, evaluate(system, random.solve(system)).objective() + 1e-9);
}

TEST(PipelineOffloader, StatsArePopulated) {
  MecSystem system{default_params(), {netgen_user(3)}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  (void)offloader.solve(system);
  const PipelineOffloader::SolveStats& stats = offloader.last_stats();
  EXPECT_GT(stats.compression.original_nodes, 0u);
  EXPECT_GT(stats.num_parts, 0u);
  EXPECT_LT(stats.compression.compressed_nodes,
            stats.compression.original_nodes);
  EXPECT_GT(stats.final_objective, 0.0);
}

TEST(PipelineOffloader, IdenticalUserPeriodMatchesBruteForce) {
  // 6 users cycling over 2 distinct graphs: the deduplicated solve must
  // produce exactly the same scheme as the naive one.
  const std::vector<UserApp> pool{netgen_user(10, 60), netgen_user(11, 60)};
  const MecSystem system =
      make_uniform_system(default_params(), pool, 6);

  PipelineOptions naive_opts = options_for(CutBackend::kSpectral);
  PipelineOffloader naive(naive_opts);
  const OffloadingScheme brute = naive.solve(system);

  PipelineOptions dedup_opts = naive_opts;
  dedup_opts.identical_user_period = pool.size();
  PipelineOffloader dedup(dedup_opts);
  const OffloadingScheme fast = dedup.solve(system);

  ASSERT_EQ(brute.placement.size(), fast.placement.size());
  for (std::size_t u = 0; u < brute.placement.size(); ++u)
    EXPECT_EQ(brute.placement[u], fast.placement[u]) << "user " << u;
}

TEST(PipelineOffloader, MultiUserSolveScalesAndStaysValid) {
  const std::vector<UserApp> pool{netgen_user(20, 80), netgen_user(21, 80),
                                  netgen_user(22, 80)};
  const MecSystem system =
      make_uniform_system(default_params(), pool, 40);
  PipelineOptions opts = options_for(CutBackend::kSpectral);
  opts.identical_user_period = pool.size();
  PipelineOffloader offloader(opts);
  const OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));
  EXPECT_EQ(scheme.placement.size(), 40u);
}

TEST(PipelineOffloader, WorksWithThreadPool) {
  parallel::ThreadPool pool(3);
  MecSystem system{default_params(), {netgen_user(30)}};
  PipelineOptions serial_opts = options_for(CutBackend::kSpectral);
  PipelineOptions pool_opts = serial_opts;
  pool_opts.pool = &pool;
  const OffloadingScheme serial =
      PipelineOffloader(serial_opts).solve(system);
  const OffloadingScheme parallel_s =
      PipelineOffloader(pool_opts).solve(system);
  // Same partition decision regardless of execution engine.
  EXPECT_EQ(serial.placement, parallel_s.placement);
}

TEST(PipelineOffloader, EmptySystem) {
  MecSystem system{default_params(), {}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  const OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.placement.empty());
}

TEST(ReferenceOffloaders, RandomRespectsPinnedAndProbability) {
  UserApp app;
  app.graph = graph::complete_graph(50);
  app.unoffloadable.assign(50, false);
  app.unoffloadable[0] = true;
  MecSystem system{default_params(), {app}};
  RandomOffloader all_in(1.0);
  const OffloadingScheme scheme = all_in.solve(system);
  EXPECT_EQ(scheme.placement[0][0], Placement::kLocal);
  EXPECT_EQ(scheme.remote_count(0), 49u);

  RandomOffloader none(0.0);
  EXPECT_EQ(none.solve(system).remote_count(0), 0u);
}

TEST(ReferenceOffloaders, Names) {
  EXPECT_EQ(AllLocalOffloader{}.name(), "all_local");
  EXPECT_EQ(AllRemoteOffloader{}.name(), "all_remote");
  EXPECT_EQ(RandomOffloader{}.name(), "random");
}

}  // namespace
}  // namespace mecoff::mec
