// Unit tests for the end-to-end offloaders (pipeline with the three cut
// backends plus the reference solvers).
#include <gtest/gtest.h>

#include "appmodel/synthetic_apps.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {
namespace {

SystemParams default_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 50.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 500.0;
  return p;
}

UserApp app_from(const appmodel::Application& app) {
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  return user;
}

UserApp netgen_user(std::uint64_t seed, std::size_t nodes = 120) {
  graph::NetgenParams p;
  p.nodes = nodes;
  p.edges = nodes * 4;
  p.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(p);
  return user;
}

PipelineOptions options_for(CutBackend backend) {
  PipelineOptions opts;
  opts.backend = backend;
  opts.propagation.coupling_threshold = 10.0;
  return opts;
}

TEST(PipelineOffloader, ProducesValidSchemes) {
  MecSystem system{default_params(),
                   {app_from(appmodel::make_face_recognition_app())}};
  for (const CutBackend backend :
       {CutBackend::kSpectral, CutBackend::kMaxFlow,
        CutBackend::kKernighanLin}) {
    PipelineOffloader offloader(options_for(backend));
    const OffloadingScheme scheme = offloader.solve(system);
    EXPECT_TRUE(scheme.valid_for(system)) << offloader.name();
  }
}

TEST(PipelineOffloader, Names) {
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kSpectral)).name(),
            "spectral");
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kMaxFlow)).name(),
            "maxflow");
  EXPECT_EQ(PipelineOffloader(options_for(CutBackend::kKernighanLin)).name(),
            "kl");
}

TEST(PipelineOffloader, PinnedFunctionsStayLocal) {
  const appmodel::Application app = appmodel::make_face_recognition_app();
  MecSystem system{default_params(), {app_from(app)}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  const OffloadingScheme scheme = offloader.solve(system);
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    if (app.function(i).unoffloadable) {
      EXPECT_EQ(scheme.placement[0][i], Placement::kLocal)
          << app.function(i).name;
    }
  }
}

TEST(PipelineOffloader, BeatsNaiveReferenceSolvers) {
  MecSystem system{default_params(), {netgen_user(1), netgen_user(2)}};
  PipelineOffloader spectral(options_for(CutBackend::kSpectral));
  const double obj =
      evaluate(system, spectral.solve(system)).objective();

  AllLocalOffloader all_local;
  AllRemoteOffloader all_remote;
  RandomOffloader random;
  EXPECT_LE(obj, evaluate(system, all_local.solve(system)).objective() + 1e-9);
  EXPECT_LE(obj,
            evaluate(system, all_remote.solve(system)).objective() + 1e-9);
  EXPECT_LE(obj, evaluate(system, random.solve(system)).objective() + 1e-9);
}

TEST(PipelineOffloader, StatsArePopulated) {
  MecSystem system{default_params(), {netgen_user(3)}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  (void)offloader.solve(system);
  const PipelineOffloader::SolveStats& stats = offloader.last_stats();
  EXPECT_GT(stats.compression.original_nodes, 0u);
  EXPECT_GT(stats.num_parts, 0u);
  EXPECT_LT(stats.compression.compressed_nodes,
            stats.compression.original_nodes);
  EXPECT_GT(stats.final_objective, 0.0);
}

TEST(PipelineOffloader, IdenticalUserPeriodMatchesBruteForce) {
  // 6 users cycling over 2 distinct graphs: the deduplicated solve must
  // produce exactly the same scheme as the naive one.
  const std::vector<UserApp> pool{netgen_user(10, 60), netgen_user(11, 60)};
  const MecSystem system =
      make_uniform_system(default_params(), pool, 6);

  PipelineOptions naive_opts = options_for(CutBackend::kSpectral);
  PipelineOffloader naive(naive_opts);
  const OffloadingScheme brute = naive.solve(system);

  PipelineOptions dedup_opts = naive_opts;
  dedup_opts.identical_user_period = pool.size();
  PipelineOffloader dedup(dedup_opts);
  const OffloadingScheme fast = dedup.solve(system);

  ASSERT_EQ(brute.placement.size(), fast.placement.size());
  for (std::size_t u = 0; u < brute.placement.size(); ++u)
    EXPECT_EQ(brute.placement[u], fast.placement[u]) << "user " << u;
}

TEST(PipelineOffloader, MultiUserSolveScalesAndStaysValid) {
  const std::vector<UserApp> pool{netgen_user(20, 80), netgen_user(21, 80),
                                  netgen_user(22, 80)};
  const MecSystem system =
      make_uniform_system(default_params(), pool, 40);
  PipelineOptions opts = options_for(CutBackend::kSpectral);
  opts.identical_user_period = pool.size();
  PipelineOffloader offloader(opts);
  const OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));
  EXPECT_EQ(scheme.placement.size(), 40u);
}

TEST(PipelineOffloader, WorksWithThreadPool) {
  parallel::ThreadPool pool(3);
  MecSystem system{default_params(), {netgen_user(30)}};
  PipelineOptions serial_opts = options_for(CutBackend::kSpectral);
  PipelineOptions pool_opts = serial_opts;
  pool_opts.pool = &pool;
  const OffloadingScheme serial =
      PipelineOffloader(serial_opts).solve(system);
  const OffloadingScheme parallel_s =
      PipelineOffloader(pool_opts).solve(system);
  // Same partition decision regardless of execution engine.
  EXPECT_EQ(serial.placement, parallel_s.placement);
}

TEST(PipelineOffloader, ParallelSolveMatchesSerialOnDistinctUsers) {
  // Seeded multi-user workload with all-distinct graphs, including a
  // user whose every function is pinned (no parts at all): the pooled
  // per-user fan-out must reproduce the serial scheme and objective
  // bit for bit.
  std::vector<UserApp> users;
  for (std::uint64_t s = 40; s < 46; ++s) users.push_back(netgen_user(s, 80));
  UserApp pinned_user = netgen_user(46, 40);
  pinned_user.unoffloadable.assign(pinned_user.graph.num_nodes(), true);
  users.push_back(pinned_user);
  const MecSystem system{default_params(), std::move(users)};

  PipelineOptions serial_opts = options_for(CutBackend::kSpectral);
  PipelineOffloader serial_solver(serial_opts);
  const OffloadingScheme serial = serial_solver.solve(system);

  parallel::ThreadPool pool(4);
  PipelineOptions pool_opts = serial_opts;
  pool_opts.pool = &pool;
  PipelineOffloader pool_solver(pool_opts);
  const OffloadingScheme pooled = pool_solver.solve(system);

  EXPECT_TRUE(serial == pooled);
  EXPECT_EQ(serial_solver.last_stats().final_objective,
            pool_solver.last_stats().final_objective);
  EXPECT_EQ(serial_solver.last_stats().num_parts,
            pool_solver.last_stats().num_parts);
  // The all-pinned user contributes no parts but stays valid/local.
  const std::size_t last = system.num_users() - 1;
  for (const Placement p : pooled.placement[last])
    EXPECT_EQ(p, Placement::kLocal);
}

TEST(PipelineOffloader, ParallelSolveMatchesSerialWithUserPeriod) {
  const std::vector<UserApp> protos{netgen_user(50, 60), netgen_user(51, 60),
                                    netgen_user(52, 60)};
  const MecSystem system =
      make_uniform_system(default_params(), protos, 12);

  PipelineOptions serial_opts = options_for(CutBackend::kSpectral);
  serial_opts.identical_user_period = protos.size();
  PipelineOffloader serial_solver(serial_opts);
  const OffloadingScheme serial = serial_solver.solve(system);

  parallel::ThreadPool pool(3);
  PipelineOptions pool_opts = serial_opts;
  pool_opts.pool = &pool;
  PipelineOffloader pool_solver(pool_opts);
  const OffloadingScheme pooled = pool_solver.solve(system);

  EXPECT_TRUE(serial == pooled);
  EXPECT_EQ(serial_solver.last_stats().final_objective,
            pool_solver.last_stats().final_objective);
}

TEST(PipelineOffloader, ReplicatedUsersAccountCompressionStats) {
  // Regression: replicated users used to copy their prototype's parts
  // without its compression counters, so aggregate stats reflected only
  // the prototypes. The deduplicated solve must report the same totals
  // as solving every user from scratch.
  const std::vector<UserApp> protos{netgen_user(60, 60), netgen_user(61, 60)};
  const MecSystem system = make_uniform_system(default_params(), protos, 6);

  PipelineOffloader naive(options_for(CutBackend::kSpectral));
  (void)naive.solve(system);
  const lpa::CompressionStats& full = naive.last_stats().compression;

  PipelineOptions dedup_opts = options_for(CutBackend::kSpectral);
  dedup_opts.identical_user_period = protos.size();
  PipelineOffloader dedup(dedup_opts);
  (void)dedup.solve(system);
  const lpa::CompressionStats& scaled = dedup.last_stats().compression;

  EXPECT_EQ(scaled.original_nodes, full.original_nodes);
  EXPECT_EQ(scaled.original_edges, full.original_edges);
  EXPECT_EQ(scaled.compressed_nodes, full.compressed_nodes);
  EXPECT_EQ(scaled.compressed_edges, full.compressed_edges);
  EXPECT_DOUBLE_EQ(scaled.absorbed_edge_weight, full.absorbed_edge_weight);
  // 6 users over 2 prototypes: totals are 3× one round of prototypes.
  EXPECT_EQ(scaled.original_nodes % 3, 0u);
}

TEST(PipelineOffloader, StageTimingsArePopulated) {
  MecSystem system{default_params(), {netgen_user(70), netgen_user(71)}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  (void)offloader.solve(system);
  const PipelineOffloader::SolveStats& stats = offloader.last_stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.compress_seconds, 0.0);
  EXPECT_GT(stats.cut_seconds, 0.0);
  EXPECT_GE(stats.greedy_seconds, 0.0);
  EXPECT_LE(stats.greedy_seconds, stats.total_seconds);
}

TEST(PipelineOffloader, EmptySystem) {
  MecSystem system{default_params(), {}};
  PipelineOffloader offloader(options_for(CutBackend::kSpectral));
  const OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.placement.empty());
}

TEST(ReferenceOffloaders, RandomRespectsPinnedAndProbability) {
  UserApp app;
  app.graph = graph::complete_graph(50);
  app.unoffloadable.assign(50, false);
  app.unoffloadable[0] = true;
  MecSystem system{default_params(), {app}};
  RandomOffloader all_in(1.0);
  const OffloadingScheme scheme = all_in.solve(system);
  EXPECT_EQ(scheme.placement[0][0], Placement::kLocal);
  EXPECT_EQ(scheme.remote_count(0), 49u);

  RandomOffloader none(0.0);
  EXPECT_EQ(none.solve(system).remote_count(0), 0u);
}

TEST(ReferenceOffloaders, Names) {
  EXPECT_EQ(AllLocalOffloader{}.name(), "all_local");
  EXPECT_EQ(AllRemoteOffloader{}.name(), "all_remote");
  EXPECT_EQ(RandomOffloader{}.name(), "random");
}

}  // namespace
}  // namespace mecoff::mec
