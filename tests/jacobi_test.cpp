// Tests for the Jacobi dense eigensolver, plus its use as an
// independent oracle against Lanczos and the Fiedler pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lanczos.hpp"
#include "spectral/fiedler.hpp"

namespace mecoff::linalg {
namespace {

TEST(Jacobi, EmptyAndOneByOne) {
  EXPECT_TRUE(jacobi_eigen(DenseMatrix(0, 0)).converged);
  DenseMatrix one(1, 1);
  one(0, 0) = 4.5;
  const JacobiResult r = jacobi_eigen(one);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.values[0], 4.5);
}

TEST(Jacobi, TwoByTwoAnalytic) {
  DenseMatrix m(2, 2);
  m(0, 0) = 2;
  m(1, 1) = 2;
  m(0, 1) = m(1, 0) = 1;
  const JacobiResult r = jacobi_eigen(m);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(Jacobi, DiagonalMatrixIsSorted) {
  DenseMatrix m(3, 3);
  m(0, 0) = 5;
  m(1, 1) = -2;
  m(2, 2) = 1;
  const JacobiResult r = jacobi_eigen(m);
  EXPECT_NEAR(r.values[0], -2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 5.0, 1e-12);
  EXPECT_EQ(r.sweeps, 0u);  // already diagonal
}

TEST(Jacobi, EigenpairsSatisfyDefinition) {
  Rng rng(42);
  const std::size_t n = 12;
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      m(i, j) = m(j, i) = rng.uniform(-2.0, 2.0);
  const JacobiResult r = jacobi_eigen(m);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < n; ++j) {
    Vec v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = r.vectors(i, j);
    const Vec mv = m.multiply(v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(mv[i], r.values[j] * v[i], 1e-9);
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  Rng rng(7);
  const std::size_t n = 10;
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      m(i, j) = m(j, i) = rng.uniform(-1.0, 1.0);
  const JacobiResult r = jacobi_eigen(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double d = 0;
      for (std::size_t i = 0; i < n; ++i)
        d += r.vectors(i, a) * r.vectors(i, b);
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Jacobi, TraceAndEigenvalueSumAgree) {
  Rng rng(13);
  const std::size_t n = 15;
  DenseMatrix m(n, n);
  double trace = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j)
      m(i, j) = m(j, i) = rng.uniform(-3.0, 3.0);
    trace += m(i, i);
  }
  const JacobiResult r = jacobi_eigen(m);
  double sum = 0;
  for (const double v : r.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(Jacobi, RejectsAsymmetricInput) {
  DenseMatrix m(2, 2);
  m(0, 1) = 1.0;  // m(1,0) left 0
  EXPECT_THROW(jacobi_eigen(m), mecoff::PreconditionError);
}

TEST(Jacobi, LaplacianSpectrumMatchesLanczosSmallest) {
  // Oracle check on an arbitrary clustered graph: Jacobi's λ₂ must
  // match the Lanczos Fiedler value.
  graph::NetgenParams p;
  p.nodes = 60;
  p.edges = 220;
  p.components = 1;
  p.seed = 99;
  const graph::WeightedGraph g = graph::netgen_style(p);
  const JacobiResult full = jacobi_eigen(dense_laplacian(g));
  ASSERT_TRUE(full.converged);
  EXPECT_NEAR(full.values[0], 0.0, 1e-8);  // null vector

  const spectral::FiedlerResult fiedler = spectral::fiedler_pair(g);
  ASSERT_TRUE(fiedler.converged);
  EXPECT_NEAR(fiedler.value, full.values[1],
              1e-6 * (1.0 + full.values[1]));
}

TEST(Jacobi, ZeroEigenvalueMultiplicityCountsComponents) {
  // Two components → λ₁ = λ₂ = 0.
  graph::GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(3, 4, 2.0);
  b.add_edge(4, 5, 2.0);
  const JacobiResult r = jacobi_eigen(dense_laplacian(b.build()));
  EXPECT_NEAR(r.values[0], 0.0, 1e-10);
  EXPECT_NEAR(r.values[1], 0.0, 1e-10);
  EXPECT_GT(r.values[2], 1e-6);
}

}  // namespace
}  // namespace mecoff::linalg
