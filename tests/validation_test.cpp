// Tests for graph validation, degree histograms, profiles, and the DSL
// component-reset round trip.
#include <gtest/gtest.h>

#include "appmodel/dsl_parser.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "lpa/compressor.hpp"
#include "lpa/propagation.hpp"
#include "mec/profiles.hpp"

namespace mecoff {
namespace {

TEST(Validation, BuilderOutputIsAlwaysValid) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    graph::NetgenParams p;
    p.nodes = 120;
    p.edges = 500;
    p.seed = seed;
    const graph::ValidationReport report =
        graph::validate(graph::netgen_style(p));
    EXPECT_TRUE(report.ok) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  }
  EXPECT_TRUE(graph::validate(graph::WeightedGraph{}).ok);
  EXPECT_TRUE(graph::validate(graph::complete_graph(6)).ok);
}

TEST(Validation, TransformedGraphsStayValid) {
  const graph::WeightedGraph g = graph::barbell_graph(5, 1.0, 8.0);
  lpa::PropagationConfig config;
  config.coupling_threshold = 4.0;
  const lpa::PropagationResult labels = lpa::propagate_labels(g, config);
  const lpa::CompressionResult comp =
      lpa::compress_by_labels(g, labels.labels);
  EXPECT_TRUE(graph::validate(comp.compressed).ok);
}

TEST(Validation, DegreeHistogram) {
  const graph::WeightedGraph star = graph::star_graph(5);
  const std::vector<std::size_t> hist = graph::degree_histogram(star);
  ASSERT_EQ(hist.size(), 5u);  // max degree 4
  EXPECT_EQ(hist[1], 4u);      // four leaves
  EXPECT_EQ(hist[4], 1u);      // one hub
  EXPECT_TRUE(graph::degree_histogram(graph::WeightedGraph{}).empty());
}

TEST(Profiles, AllPresetsAreValidAndDistinct) {
  const auto& profiles = mec::all_profiles();
  ASSERT_GE(profiles.size(), 4u);
  for (const mec::NamedProfile& p : profiles) {
    EXPECT_TRUE(p.params.valid()) << p.name;
  }
  // Key deployment ratios differ: Wi-Fi radio cheaper than LTE per bit.
  mec::SystemParams wifi;
  mec::SystemParams lte;
  ASSERT_TRUE(mec::find_profile("wifi_campus", wifi));
  ASSERT_TRUE(mec::find_profile("lte_smallcell", lte));
  EXPECT_LT(wifi.transmit_power / wifi.bandwidth,
            lte.transmit_power / lte.bandwidth);
}

TEST(DslComponentReset, RoundTripsAnonymousAfterNamed) {
  // Function order: anonymous, named, anonymous again — only
  // expressible with the `component -` reset.
  appmodel::Application app("mixed");
  app.add_function({"a", 1, false, ""});
  app.add_function({"b", 2, false, "core"});
  app.add_function({"c", 3, false, ""});
  const std::string dsl = appmodel::to_app_dsl(app);
  EXPECT_NE(dsl.find("component -"), std::string::npos);
  const Result<appmodel::Application> round =
      appmodel::parse_app_dsl(dsl);
  ASSERT_TRUE(round.ok()) << (round.ok() ? "" : round.error().message);
  EXPECT_EQ(round.value().function(0).component, "");
  EXPECT_EQ(round.value().function(1).component, "core");
  EXPECT_EQ(round.value().function(2).component, "");
}

TEST(DslComponentReset, DashParsesAsAnonymous) {
  const auto r = appmodel::parse_app_dsl(
      "app X\ncomponent ui\nfunction a compute=1\ncomponent -\n"
      "function b compute=1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().function(1).component, "");
}

}  // namespace
}  // namespace mecoff
