// Tests for the task-graph executor: hand-computed schedules, critical
// paths through offloading boundaries, and error handling.
#include <gtest/gtest.h>

#include <cmath>

#include "appmodel/application.hpp"
#include "appmodel/synthetic_apps.hpp"
#include "graph/weighted_graph.hpp"
#include "mec/offloader.hpp"
#include "sim/dag_executor.hpp"
#include "sim/executor.hpp"

namespace mecoff::sim {
namespace {

using appmodel::Application;
using mec::MecSystem;
using mec::OffloadingScheme;
using mec::Placement;
using mec::SystemParams;
using mec::UserApp;

SystemParams dag_params() {
  SystemParams p;
  p.mobile_power = 2.0;
  p.transmit_power = 10.0;
  p.bandwidth = 4.0;
  p.mobile_capacity = 2.0;
  p.server_capacity = 10.0;
  return p;
}

/// Chain a(8) → b(20) → c(6) with |a→b| = 8, |b→c| = 2.
Application chain_app() {
  Application app("chain");
  app.add_function({"a", 8, false, ""});
  app.add_function({"b", 20, false, ""});
  app.add_function({"c", 6, false, ""});
  app.add_exchange(0, 1, 8);
  app.add_exchange(1, 2, 2);
  return app;
}

UserApp to_user(const Application& app) {
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  return user;
}

TEST(DagAcyclicity, DetectsCycles) {
  EXPECT_TRUE(call_graph_is_acyclic(chain_app()));
  Application cyclic("cyc");
  cyclic.add_function({"x", 1, false, ""});
  cyclic.add_function({"y", 1, false, ""});
  cyclic.add_exchange(0, 1, 1);
  cyclic.add_exchange(1, 0, 1);
  EXPECT_FALSE(call_graph_is_acyclic(cyclic));
}

TEST(DagExecutor, AllLocalChainHandComputed) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const auto report =
      execute_dag(system, {app}, OffloadingScheme::all_local(system));
  ASSERT_TRUE(report.ok());
  const DagUserOutcome& u = report.value().users[0];
  // Serial CPU at rate 2: 4 + 10 + 3 = 17; no radio.
  EXPECT_NEAR(u.makespan, 17.0, 1e-9);
  EXPECT_NEAR(u.device_busy, 17.0, 1e-9);
  EXPECT_DOUBLE_EQ(u.link_busy, 0.0);
  EXPECT_NEAR(u.local_energy, 34.0, 1e-9);
  EXPECT_DOUBLE_EQ(u.transmit_energy, 0.0);
}

TEST(DagExecutor, OffloadMiddleFunctionHandComputed) {
  // b runs remotely: a (4s on device) → upload 8/4 = 2s → b on server
  // 20/10 = 2s → download 2/4 = 0.5s → c on device 3s. Makespan 11.5.
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;
  const auto report = execute_dag(system, {app}, scheme);
  ASSERT_TRUE(report.ok());
  const DagUserOutcome& u = report.value().users[0];
  EXPECT_NEAR(u.makespan, 4.0 + 2.0 + 2.0 + 0.5 + 3.0, 1e-9);
  EXPECT_NEAR(u.device_busy, 7.0, 1e-9);   // a and c
  EXPECT_NEAR(u.server_busy, 2.0, 1e-9);   // b
  EXPECT_NEAR(u.link_busy, 2.5, 1e-9);     // 8 up + 2 down at rate 4
  EXPECT_NEAR(u.transmit_energy, 25.0, 1e-9);
}

TEST(DagExecutor, TracesAreOrderedAndComplete) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const auto report =
      execute_dag(system, {app}, OffloadingScheme::all_local(system));
  ASSERT_TRUE(report.ok());
  const auto& tasks = report.value().users[0].tasks;
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].function, 0u);
  EXPECT_EQ(tasks[2].function, 2u);
  for (std::size_t i = 1; i < tasks.size(); ++i)
    EXPECT_GE(tasks[i].start, tasks[i - 1].finish - 1e-9);  // chain order
}

TEST(DagExecutor, TracesCanBeDisabled) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  DagOptions opts;
  opts.record_traces = false;
  const auto report = execute_dag(
      system, {app}, OffloadingScheme::all_local(system), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().users[0].tasks.empty());
}

TEST(DagExecutor, ParallelBranchesOverlapOnServer) {
  // Fork: root feeds two independent heavy functions; both remote. The
  // shared FIFO server serializes them; device stays idle meanwhile.
  Application app("fork");
  app.add_function({"root", 2, false, ""});
  app.add_function({"left", 30, false, ""});
  app.add_function({"right", 30, false, ""});
  app.add_exchange(0, 1, 4);
  app.add_exchange(0, 2, 4);
  MecSystem system{dag_params(), {to_user(app)}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;
  scheme.placement[0][2] = Placement::kRemote;
  const auto report = execute_dag(system, {app}, scheme);
  ASSERT_TRUE(report.ok());
  const DagUserOutcome& u = report.value().users[0];
  // root 1s; uploads 1s each (serialized on one radio): left enters at
  // 2, right at 3; server 3s each, FIFO: left 2→5, right 5→8.
  EXPECT_NEAR(u.makespan, 8.0, 1e-9);
  EXPECT_NEAR(u.server_busy, 6.0, 1e-9);
}

TEST(DagExecutor, MultiUserServerContentionIsVisible) {
  const Application app = chain_app();
  std::vector<Application> apps{app, app, app, app};
  MecSystem system{dag_params(),
                   {to_user(app), to_user(app), to_user(app), to_user(app)}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  const auto crowd = execute_dag(system, apps, remote);
  ASSERT_TRUE(crowd.ok());

  MecSystem solo{dag_params(), {to_user(app)}};
  const auto alone =
      execute_dag(solo, {app}, OffloadingScheme::all_remote(solo));
  ASSERT_TRUE(alone.ok());
  EXPECT_GT(crowd.value().makespan, alone.value().makespan);
}

TEST(DagExecutor, EnergiesMatchBatchExecutorWhenNoTransfers) {
  // All-local: both executors must bill identical energy.
  const Application app = appmodel::make_video_analytics_app();
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  MecSystem system{dag_params(), {user}};
  const OffloadingScheme scheme = OffloadingScheme::all_local(system);
  const auto dag = execute_dag(system, {app}, scheme);
  ASSERT_TRUE(dag.ok());
  const SimReport batch = simulate_scheme(system, scheme);
  EXPECT_NEAR(dag.value().total_energy, batch.total_energy, 1e-9);
}

TEST(DagExecutor, RealisticAppEndToEnd) {
  const Application app = appmodel::make_face_recognition_app();
  ASSERT_TRUE(call_graph_is_acyclic(app));
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  MecSystem system{dag_params(), {user}};
  mec::PipelineOptions popts;
  popts.propagation.coupling_threshold = 50.0;
  mec::PipelineOffloader offloader(popts);
  const OffloadingScheme scheme = offloader.solve(system);
  const auto report = execute_dag(system, {app}, scheme);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().makespan, 0.0);
  EXPECT_EQ(report.value().users[0].tasks.size(), app.num_functions());
}

TEST(DagFaults, DisabledInjectionMatchesBaselineBitwise) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  DagOptions with_model;
  with_model.remote_faults.kill_probability = 0.0;  // present but off
  const auto base = execute_dag(system, {app}, remote);
  const auto off = execute_dag(system, {app}, remote, with_model);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(base.value().makespan, off.value().makespan);
  EXPECT_EQ(base.value().total_energy, off.value().total_energy);
  EXPECT_EQ(off.value().remote_kills, 0u);
  EXPECT_EQ(off.value().remote_retries, 0u);
  EXPECT_EQ(off.value().local_fallbacks, 0u);
}

TEST(DagFaults, CertainDeathFallsBackLocallyAndAlwaysCompletes) {
  const Application app = chain_app();
  std::vector<Application> apps{app, app};
  MecSystem system{dag_params(), {to_user(app), to_user(app)}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  DagOptions options;
  options.remote_faults.kill_probability = 1.0;  // every attempt dies
  options.remote_faults.max_retries = 2;
  const auto report = execute_dag(system, apps, remote, options);
  ASSERT_TRUE(report.ok()) << report.error().message;

  // Degrade-don't-die: every remote task exhausted its retries and
  // re-placed on the device, and the run still finished.
  const std::size_t remote_tasks = 2 * app.num_functions();
  EXPECT_EQ(report.value().local_fallbacks, remote_tasks);
  // Each task burned (max_retries + 1) kills before falling back.
  EXPECT_EQ(report.value().remote_kills, remote_tasks * 3);
  EXPECT_EQ(report.value().remote_retries, remote_tasks * 3);
  EXPECT_GT(report.value().wasted_server_time, 0.0);
  for (const DagUserOutcome& user : report.value().users) {
    EXPECT_GT(user.makespan, 0.0);
    EXPECT_TRUE(std::isfinite(user.makespan));
    EXPECT_GT(user.device_busy, 0.0);  // the fallback ran on the device
  }
}

TEST(DagFaults, InjectionIsSeedDeterministic) {
  const Application app = appmodel::make_face_recognition_app();
  UserApp user = to_user(app);
  user.components = app.component_ids();
  MecSystem system{dag_params(), {user}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  DagOptions options;
  options.remote_faults.kill_probability = 0.4;
  options.remote_faults.max_retries = 4;

  const auto a = execute_dag(system, {app}, remote, options);
  const auto b = execute_dag(system, {app}, remote, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same seed, same DES → bitwise-equal reports.
  EXPECT_EQ(a.value().makespan, b.value().makespan);
  EXPECT_EQ(a.value().total_energy, b.value().total_energy);
  EXPECT_EQ(a.value().remote_kills, b.value().remote_kills);
  EXPECT_EQ(a.value().remote_retries, b.value().remote_retries);
  EXPECT_EQ(a.value().local_fallbacks, b.value().local_fallbacks);
  EXPECT_EQ(a.value().wasted_server_time, b.value().wasted_server_time);

  options.remote_faults.seed ^= 0xbeef;
  const auto c = execute_dag(system, {app}, remote, options);
  ASSERT_TRUE(c.ok());
  // A different seed draws a different kill pattern (the app has
  // enough remote attempts that a tie is astronomically unlikely).
  EXPECT_NE(a.value().wasted_server_time, c.value().wasted_server_time);
}

TEST(DagFaults, KillsDelayTheRunButNeverLoseWork) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  const auto clean = execute_dag(system, {app}, remote);
  DagOptions options;
  options.remote_faults.kill_probability = 0.6;
  const auto faulty = execute_dag(system, {app}, remote, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(faulty.ok());
  // Wasted service + backoff can only stretch the schedule.
  EXPECT_GE(faulty.value().makespan, clean.value().makespan);
  // Every function still ran exactly once to completion.
  EXPECT_EQ(faulty.value().users[0].tasks.size(), app.num_functions());
}

TEST(DagFaults, InvalidFaultModelIsACleanError) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const OffloadingScheme scheme = OffloadingScheme::all_local(system);
  DagOptions options;
  options.remote_faults.kill_probability = 1.5;
  EXPECT_FALSE(execute_dag(system, {app}, scheme, options).ok());
  options.remote_faults.kill_probability = 0.5;
  options.remote_faults.backoff_factor = 0.5;  // shrinking backoff
  EXPECT_FALSE(execute_dag(system, {app}, scheme, options).ok());
}

TEST(DagExecutor, ErrorsOnBadInput) {
  const Application app = chain_app();
  MecSystem system{dag_params(), {to_user(app)}};
  const OffloadingScheme scheme = OffloadingScheme::all_local(system);

  // Wrong number of apps.
  EXPECT_FALSE(execute_dag(system, {}, scheme).ok());

  // Cyclic structure.
  Application cyclic("cyc");
  cyclic.add_function({"x", 8, false, ""});
  cyclic.add_function({"y", 20, false, ""});
  cyclic.add_function({"z", 6, false, ""});
  cyclic.add_exchange(0, 1, 1);
  cyclic.add_exchange(1, 2, 1);
  cyclic.add_exchange(2, 0, 1);
  const auto r = execute_dag(system, {cyclic}, scheme);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cyclic"), std::string::npos);

  // Size mismatch.
  Application small("s");
  small.add_function({"only", 1, false, ""});
  EXPECT_FALSE(execute_dag(system, {small}, scheme).ok());
}

}  // namespace
}  // namespace mecoff::sim
