// Unit tests for graph generators: fixed shapes with analytic
// properties, plus the NETGEN-style and call-graph workload generators.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace mecoff::graph {
namespace {

TEST(FixedShapes, PathGraph) {
  const WeightedGraph g = path_graph(6, 2.0, 3.0);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_DOUBLE_EQ(g.node_weight(3), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight_between(2, 3), 3.0);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
}

TEST(FixedShapes, CycleGraph) {
  const WeightedGraph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(FixedShapes, CycleRequiresThreeNodes) {
  EXPECT_THROW(cycle_graph(2), mecoff::PreconditionError);
}

TEST(FixedShapes, CompleteGraph) {
  const WeightedGraph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(FixedShapes, StarGraph) {
  const WeightedGraph g = star_graph(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(FixedShapes, GridGraph) {
  const WeightedGraph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_connected(g));
}

TEST(FixedShapes, BarbellBridgeIsLightest) {
  const WeightedGraph g = barbell_graph(4, 1.0, 10.0);
  EXPECT_EQ(g.num_nodes(), 8u);
  // Two K4s (6 edges each) plus one bridge.
  EXPECT_EQ(g.num_edges(), 13u);
  const GraphStats s = compute_stats(g);
  EXPECT_DOUBLE_EQ(s.min_edge_weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight_between(3, 4), 1.0);
}

TEST(Netgen, ExactNodeCount) {
  NetgenParams p;
  p.nodes = 250;
  p.edges = 1214;
  p.seed = 5;
  const WeightedGraph g = netgen_style(p);
  EXPECT_EQ(g.num_nodes(), 250u);
}

TEST(Netgen, EdgeCountNearTarget) {
  NetgenParams p;
  p.nodes = 500;
  p.edges = 2643;
  p.seed = 9;
  const WeightedGraph g = netgen_style(p);
  // Merged duplicates can undercut the target slightly.
  EXPECT_GE(g.num_edges(), static_cast<std::size_t>(0.85 * p.edges));
  EXPECT_LE(g.num_edges(), p.edges);
}

TEST(Netgen, ComponentCountMatches) {
  NetgenParams p;
  p.nodes = 300;
  p.edges = 900;
  p.components = 6;
  p.seed = 11;
  const WeightedGraph g = netgen_style(p);
  EXPECT_EQ(connected_components(g).count, 6u);
}

TEST(Netgen, SingleComponentIsConnected) {
  NetgenParams p;
  p.nodes = 120;
  p.edges = 500;
  p.components = 1;
  p.seed = 3;
  EXPECT_TRUE(is_connected(netgen_style(p)));
}

TEST(Netgen, NodeWeightsInRange) {
  NetgenParams p;
  p.nodes = 200;
  p.edges = 800;
  p.min_node_weight = 2.0;
  p.max_node_weight = 6.0;
  p.seed = 13;
  const WeightedGraph g = netgen_style(p);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.node_weight(v), 2.0);
    EXPECT_LE(g.node_weight(v), 6.0);
  }
}

TEST(Netgen, HeavyIntraClusterEdgesExist) {
  NetgenParams p;
  p.nodes = 200;
  p.edges = 800;
  p.min_edge_weight = 1.0;
  p.max_edge_weight = 2.0;
  p.heavy_weight_multiplier = 10.0;
  p.seed = 17;
  const GraphStats s = compute_stats(netgen_style(p));
  // Light edges stay <= 2; heavy ones reach well above.
  EXPECT_GT(s.max_edge_weight, 5.0);
  EXPECT_GE(s.min_edge_weight, 1.0);
}

TEST(Netgen, DeterministicPerSeed) {
  NetgenParams p;
  p.nodes = 100;
  p.edges = 400;
  p.seed = 21;
  const WeightedGraph a = netgen_style(p);
  const WeightedGraph b = netgen_style(p);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
    EXPECT_DOUBLE_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(Netgen, DifferentSeedsDiffer) {
  NetgenParams p;
  p.nodes = 100;
  p.edges = 400;
  p.seed = 1;
  const WeightedGraph a = netgen_style(p);
  p.seed = 2;
  const WeightedGraph b = netgen_style(p);
  bool any_diff = a.num_edges() != b.num_edges();
  if (!any_diff) {
    for (std::size_t i = 0; i < a.num_edges() && !any_diff; ++i)
      any_diff = a.edges()[i].weight != b.edges()[i].weight;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Netgen, TinyGraphDoesNotCrash) {
  NetgenParams p;
  p.nodes = 1;
  p.edges = 0;
  p.components = 1;
  const WeightedGraph g = netgen_style(p);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CallGraph, ConnectedTree) {
  CallGraphParams p;
  p.functions = 50;
  p.shortcut_probability = 0.0;
  p.seed = 4;
  const WeightedGraph g = app_call_graph(p);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 49u);  // pure tree
  EXPECT_TRUE(is_connected(g));
}

TEST(CallGraph, ShortcutsAddEdges) {
  CallGraphParams p;
  p.functions = 80;
  p.shortcut_probability = 0.5;
  p.seed = 6;
  const WeightedGraph g = app_call_graph(p);
  EXPECT_GT(g.num_edges(), 79u);
  EXPECT_TRUE(is_connected(g));
}

TEST(CallGraph, WeightsWithinConfiguredRanges) {
  CallGraphParams p;
  p.functions = 60;
  p.min_compute = 5;
  p.max_compute = 10;
  p.min_data = 2;
  p.max_data = 4;
  // Shortcut edges can land on an existing pair and merge (summing
  // weights); disable them to test the per-edge range contract.
  p.shortcut_probability = 0.0;
  p.seed = 8;
  const WeightedGraph g = app_call_graph(p);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.node_weight(v), 5.0);
    EXPECT_LE(g.node_weight(v), 10.0);
  }
  const GraphStats s = compute_stats(g);
  EXPECT_GE(s.min_edge_weight, 2.0);
  EXPECT_LE(s.max_edge_weight, 4.0);
}

}  // namespace
}  // namespace mecoff::graph
