// Unit tests for src/graph: core structure, components, subgraphs,
// partitions, metrics, and I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "graph/partition.hpp"
#include "graph/subgraph.hpp"
#include "graph/weighted_graph.hpp"

namespace mecoff::graph {
namespace {

WeightedGraph triangle() {
  GraphBuilder b;
  b.add_node(1.0);
  b.add_node(2.0);
  b.add_node(3.0);
  b.add_edge(0, 1, 5.0);
  b.add_edge(1, 2, 7.0);
  b.add_edge(0, 2, 9.0);
  return b.build();
}

TEST(WeightedGraph, EmptyGraph) {
  const WeightedGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_node_weight(), 0.0);
}

TEST(WeightedGraph, BasicAccessors) {
  const WeightedGraph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.node_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(g.total_node_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 21.0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 14.0);
}

TEST(WeightedGraph, AdjacencyIsSymmetric) {
  const WeightedGraph g = triangle();
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    EXPECT_TRUE(g.has_edge(e.v, e.u));
    EXPECT_DOUBLE_EQ(g.edge_weight_between(e.u, e.v),
                     g.edge_weight_between(e.v, e.u));
  }
}

TEST(WeightedGraph, MissingEdgeHasZeroWeight) {
  GraphBuilder b;
  b.add_node(1);
  b.add_node(1);
  b.add_node(1);
  b.add_edge(0, 1, 2.0);
  const WeightedGraph g = b.build();
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight_between(0, 2), 0.0);
}

TEST(GraphBuilder, ParallelEdgesMerge) {
  GraphBuilder b;
  b.add_node(1);
  b.add_node(1);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 0, 3.0);  // reverse orientation merges too
  const WeightedGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight_between(0, 1), 5.0);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b;
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 0, 1.0), PreconditionError);
}

TEST(GraphBuilder, RejectsNegativeWeights) {
  GraphBuilder b;
  EXPECT_THROW(b.add_node(-1.0), PreconditionError);
  b.add_node(1);
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 1, -2.0), PreconditionError);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b;
  b.add_node(1);
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 5, 1.0), PreconditionError);
}

TEST(GraphBuilder, PresizedNodesDefaultToZeroWeight) {
  GraphBuilder b(3);
  EXPECT_EQ(b.num_nodes(), 3u);
  b.set_node_weight(1, 4.0);
  const WeightedGraph g = b.build();
  EXPECT_DOUBLE_EQ(g.node_weight(0), 0.0);
  EXPECT_DOUBLE_EQ(g.node_weight(1), 4.0);
}

TEST(WeightedGraph, OutOfRangeAccessThrows) {
  const WeightedGraph g = triangle();
  EXPECT_THROW((void)g.node_weight(3), PreconditionError);
  EXPECT_THROW((void)g.neighbors(9), PreconditionError);
  EXPECT_THROW((void)g.edge(99), PreconditionError);
}

TEST(Components, SingleComponent) {
  const WeightedGraph g = triangle();
  const ComponentLabels labels = connected_components(g);
  EXPECT_EQ(labels.count, 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, TwoComponents) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(1);
  b.add_edge(0, 1, 1);
  b.add_edge(3, 4, 1);
  const WeightedGraph g = b.build();
  const ComponentLabels labels = connected_components(g);
  EXPECT_EQ(labels.count, 3u);  // {0,1}, {2}, {3,4}
  EXPECT_EQ(labels.component_of[0], labels.component_of[1]);
  EXPECT_NE(labels.component_of[0], labels.component_of[2]);
  EXPECT_FALSE(is_connected(g));

  const auto lists = component_node_lists(labels);
  ASSERT_EQ(lists.size(), 3u);
  std::size_t total = 0;
  for (const auto& list : lists) total += list.size();
  EXPECT_EQ(total, 5u);
}

TEST(Components, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(WeightedGraph{}));
}

TEST(Subgraph, InducedKeepsInternalEdges) {
  const WeightedGraph g = triangle();
  const std::vector<NodeId> keep{0, 2};
  const Subgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight_between(0, 1), 9.0);
  EXPECT_EQ(sub.to_parent[0], 0u);
  EXPECT_EQ(sub.to_parent[1], 2u);
  EXPECT_DOUBLE_EQ(sub.graph.node_weight(1), 3.0);
}

TEST(Subgraph, RemoveNodes) {
  const WeightedGraph g = triangle();
  const Subgraph sub = remove_nodes(g, {false, true, false});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
  EXPECT_EQ(sub.to_parent, (std::vector<NodeId>{0, 2}));
}

TEST(Subgraph, DuplicateNodesRejected) {
  const WeightedGraph g = triangle();
  const std::vector<NodeId> dup{0, 0};
  EXPECT_THROW(induced_subgraph(g, dup), PreconditionError);
}

TEST(Partition, CutWeightCountsCrossEdges) {
  const WeightedGraph g = triangle();
  EXPECT_DOUBLE_EQ(cut_weight(g, {0, 1, 0}), 5.0 + 7.0);
  EXPECT_DOUBLE_EQ(cut_weight(g, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(cut_weight(g, {1, 0, 0}), 5.0 + 9.0);
}

TEST(Partition, Validity) {
  const WeightedGraph g = triangle();
  EXPECT_TRUE(is_valid_partition(g, {0, 1, 1}));
  EXPECT_FALSE(is_valid_partition(g, {0, 1}));       // wrong length
  EXPECT_FALSE(is_valid_partition(g, {0, 1, 2}));    // bad side value
}

TEST(Partition, SideHelpers) {
  Bipartition p;
  p.side = {0, 1, 1, 0};
  EXPECT_EQ(p.size(0), 2u);
  EXPECT_EQ(p.size(1), 2u);
  EXPECT_EQ(p.nodes_on_side(1), (std::vector<NodeId>{1, 2}));
}

TEST(Metrics, StatsOnTriangle) {
  const GraphStats s = compute_stats(triangle());
  EXPECT_EQ(s.nodes, 3u);
  EXPECT_EQ(s.edges, 3u);
  EXPECT_DOUBLE_EQ(s.total_node_weight, 6.0);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.min_edge_weight, 5.0);
  EXPECT_DOUBLE_EQ(s.max_edge_weight, 9.0);
}

TEST(Metrics, ConductanceOfBalancedCut) {
  // Path 0-1-2-3, cut between 1 and 2: cut=1, vol each side=3.
  const WeightedGraph g = path_graph(4);
  EXPECT_NEAR(conductance(g, {0, 0, 1, 1}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(conductance(g, {0, 0, 0, 0}), 0.0);  // degenerate
}

TEST(GraphIo, EdgeListRoundTrip) {
  const WeightedGraph g = triangle();
  const std::string text = to_edge_list(g);
  const Result<WeightedGraph> parsed = parse_edge_list(text);
  ASSERT_TRUE(parsed.ok());
  const WeightedGraph& h = parsed.value();
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(h.node_weight(2), 3.0);
  EXPECT_DOUBLE_EQ(h.edge_weight_between(1, 2), 7.0);
}

TEST(GraphIo, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_edge_list("").ok());
  EXPECT_FALSE(parse_edge_list("edge 0 1 2\n").ok());       // before nodes
  EXPECT_FALSE(parse_edge_list("nodes 2\nedge 0 0 1\n").ok());  // self-loop
  EXPECT_FALSE(parse_edge_list("nodes 2\nedge 0 5 1\n").ok());  // range
  EXPECT_FALSE(parse_edge_list("nodes 2\nfrob 1\n").ok());  // directive
  EXPECT_FALSE(parse_edge_list("nodes 2\nnodes 2\n").ok()); // duplicate
}

TEST(GraphIo, ParseErrorNamesLine) {
  const auto r = parse_edge_list("nodes 2\nedge 0 0 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(GraphIo, ParseSkipsCommentsAndBlanks) {
  const auto r = parse_edge_list(
      "# header\n\nnodes 2\n node 0 4\n# mid\nedge 0 1 2.5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().node_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(r.value().edge_weight_between(0, 1), 2.5);
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  const std::string dot = to_dot(triangle(), {0, 1, 1});
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace mecoff::graph
