// Unit tests for the mini-Spark engine: thread pool, datasets, and the
// parallel SpMV operator the Fig. 9 experiment depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/vector_ops.hpp"
#include "parallel/dataset.hpp"
#include "parallel/parallel_spmv.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::parallel {
namespace {

TEST(ThreadPool, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForChunksPartitionExactly) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(10, 110, [&](std::size_t lo, std::size_t hi) {
    const std::scoped_lock lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 110u);
}

TEST(ThreadPool, ParallelForExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("bad");
                                 }),
               std::runtime_error);
}

// Runs `body` on a fresh thread and fails fast if it does not finish
// within `timeout` — the watchdog for the reentrancy regression tests,
// so a reintroduced nested-pool deadlock fails CI instead of hanging
// it. Returns false on timeout (the stuck thread is detached; the test
// process exits regardless).
bool completes_within(std::chrono::seconds timeout,
                      const std::function<void()>& body) {
  std::promise<void> done;
  std::future<void> done_future = done.get_future();
  std::thread runner([&body, &done] {
    body();
    done.set_value();
  });
  if (done_future.wait_for(timeout) != std::future_status::ready) {
    runner.detach();
    return false;
  }
  runner.join();
  return true;
}

TEST(ThreadPool, WorkerIdentityIsPerPool) {
  ThreadPool pool(1);
  ThreadPool other(1);
  EXPECT_FALSE(pool.in_worker_thread());
  EXPECT_TRUE(pool.submit([&] { return pool.in_worker_thread(); }).get());
  EXPECT_FALSE(pool.submit([&] { return other.in_worker_thread(); }).get());
}

TEST(ThreadPool, TryRunOneDrainsQueueFromAnyThread) {
  // Keep the single worker busy so submissions pile up, then drain them
  // from the test thread.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();  // the worker holds the blocker, not the queue
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(pool.submit([&ran] { ++ran; }));
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(ran.load(), 5);
  release.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
}

TEST(ThreadPool, TryRunOneRespectsTaskGroups) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  auto blocker = pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();

  const ThreadPool::TaskGroup mine = pool.make_group();
  const ThreadPool::TaskGroup other = pool.make_group();
  std::atomic<int> mine_ran{0};
  std::atomic<int> other_ran{0};
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit_to(other, [&] { ++other_ran; }));
  futures.push_back(pool.submit_to(mine, [&] { ++mine_ran; }));
  futures.push_back(pool.submit_to(other, [&] { ++other_ran; }));
  futures.push_back(pool.submit_to(mine, [&] { ++mine_ran; }));

  // Grouped draining runs ONLY that group's tasks, regardless of queue
  // position; the rest stay queued for the workers.
  while (pool.try_run_one(mine)) {
  }
  EXPECT_EQ(mine_ran.load(), 2);
  EXPECT_EQ(other_ran.load(), 0);
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(other_ran.load(), 2);
  release.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
}

// Regression for the shutdown-drain contract under contention: the
// destructor sets stopping_ and joins, but workers must keep popping
// until the queue is empty (worker_loop re-checks the queue after the
// stop flag), so every accepted task runs exactly once even when the
// pool dies with a deep backlog. Guarded by the clang thread-safety
// annotations: stopping_ and queue_ are GUARDED_BY(mutex_).
TEST(ThreadPool, DestructionDrainsBacklogEveryTaskRunsOnce) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    // A brief stall up front so most of the backlog is still queued
    // when the destructor starts racing the workers for mutex_.
    for (int i = 0; i < 2; ++i)
      futures.push_back(pool.submit(
          [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }));
    for (int i = 0; i < 200; ++i)
      futures.push_back(pool.submit([&ran] { ++ran; }));
  }  // ~ThreadPool: stop, wake everyone, join — after draining
  EXPECT_EQ(ran.load(), 200);
  for (auto& f : futures) f.get();  // none may be a broken promise
}

// Regression for the nested-pool deadlock: a worker that called
// parallel_for used to block in future::get() on chunks queued behind
// itself, so any nesting on a 1-thread pool hung forever. With
// help-while-wait the waiting worker runs those chunks itself.
TEST(ThreadPool, NestedParallelForOnSingleThreadCompletes) {
  std::atomic<int> hits{0};
  const bool finished = completes_within(std::chrono::seconds(60), [&] {
    ThreadPool pool(1);
    pool.submit([&] { pool.parallel_for(0, 16, [&](std::size_t) { ++hits; }); })
        .get();
  });
  ASSERT_TRUE(finished) << "nested parallel_for deadlocked (watchdog fired)";
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, DoublyNestedParallelSectionsComplete) {
  // The shape the parallel solve produces: outer per-user task →
  // parallel_for over components → parallel_for_chunks over SpMV rows,
  // all on one shared pool.
  std::atomic<int> hits{0};
  const bool finished = completes_within(std::chrono::seconds(60), [&] {
    ThreadPool pool(2);
    std::vector<std::future<void>> users;
    for (int u = 0; u < 4; ++u) {
      users.push_back(pool.submit([&] {
        pool.parallel_for(0, 4, [&](std::size_t) {
          pool.parallel_for_chunks(0, 8, [&](std::size_t lo, std::size_t hi) {
            hits += static_cast<int>(hi - lo);
          });
        });
      }));
    }
    for (auto& f : users) {
      pool.wait_and_help(f);
      f.get();
    }
  });
  ASSERT_TRUE(finished) << "doubly nested sections deadlocked";
  EXPECT_EQ(hits.load(), 4 * 4 * 8);
}

TEST(ThreadPool, NestedExceptionStillPropagates) {
  ThreadPool pool(1);
  auto outer = pool.submit([&] {
    pool.parallel_for(0, 8, [](std::size_t i) {
      if (i == 5) throw std::runtime_error("inner");
    });
  });
  EXPECT_THROW((pool.wait_and_help(outer), outer.get()), std::runtime_error);
}

TEST(ThreadPool, WaitAndHelpFromNonWorkerBlocksUntilReady) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  pool.wait_and_help(f);
  EXPECT_EQ(f.get(), 7);
}

// Regression for the idle busy-wait: wait_and_help with nothing to
// help must park on the activity condition and still wake promptly
// when a worker completes the awaited task. The bound is generous (the
// backoff caps at 1ms), but a regression to an unnotified sleep or a
// spin would show up as either a large latency or a burned core — the
// former is what we can assert portably.
TEST(ThreadPool, WaitAndHelpWakesPromptlyOnWorkerCompletion) {
  ThreadPool pool(2);
  const ThreadPool::TaskGroup group = pool.make_group();
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  // The task the waiter cares about: blocks until the gate opens.
  auto f = pool.submit_to(group, [opened] {
    opened.wait();
    return 42;
  });
  // Open the gate from a side thread after the waiter has had time to
  // exhaust the help queue and park.
  std::thread opener([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    gate.set_value();
  });
  const auto start = std::chrono::steady_clock::now();
  pool.wait_and_help(f, group);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  opener.join();
  EXPECT_EQ(f.get(), 42);
  // ~100ms gate + wake latency; anything near seconds is a lost wake.
  EXPECT_LT(elapsed, 2.0);
}

TEST(Dataset, ParallelizeAndCollectPreservesElements) {
  ThreadPool pool(3);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  const auto ds = Dataset<int>::parallelize(items, pool, 4);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.num_partitions(), 4u);
  auto collected = ds.collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, items);
}

TEST(Dataset, MapTransformsEveryElement) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::parallelize({1, 2, 3, 4}, pool, 2);
  const auto doubled = ds.map([](const int& x) { return 2 * x; });
  auto out = doubled.collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6, 8}));
}

TEST(Dataset, MapChangesElementType) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::parallelize({1, 22, 333}, pool);
  const auto strs =
      ds.map([](const int& x) { return std::to_string(x); });
  auto out = strs.collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"1", "22", "333"}));
}

TEST(Dataset, FilterKeepsMatching) {
  ThreadPool pool(2);
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  const auto ds = Dataset<int>::parallelize(items, pool, 3);
  const auto evens = ds.filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.size(), 10u);
}

TEST(Dataset, ReduceSums) {
  ThreadPool pool(3);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 1);
  const auto ds = Dataset<int>::parallelize(items, pool, 7);
  const auto sum = ds.reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, 5050);
}

TEST(Dataset, ReduceEmptyIsNullopt) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::parallelize({}, pool);
  EXPECT_FALSE(ds.reduce([](int a, int b) { return a + b; }).has_value());
}

TEST(Dataset, ForEachPartitionSeesAllElements) {
  ThreadPool pool(2);
  const auto ds = Dataset<int>::parallelize({1, 2, 3, 4, 5}, pool, 2);
  std::atomic<int> total{0};
  ds.for_each_partition(
      [&](std::size_t, const std::vector<int>& part) {
        int local = 0;
        for (int v : part) local += v;
        total += local;
      });
  EXPECT_EQ(total.load(), 15);
}

TEST(ParallelSpmv, MatchesSerialOperator) {
  graph::NetgenParams p;
  p.nodes = 300;
  p.edges = 1200;
  p.seed = 31;
  const graph::WeightedGraph g = graph::netgen_style(p);
  const linalg::SparseMatrix lap = linalg::laplacian(g);

  ThreadPool pool(4);
  const linalg::LinearOperator serial = linalg::make_operator(lap);
  const linalg::LinearOperator par = make_parallel_operator(lap, pool);

  Rng rng(17);
  linalg::Vec x(g.num_nodes());
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  linalg::Vec ys(g.num_nodes(), 0.0);
  linalg::Vec yp(g.num_nodes(), 0.0);
  serial.apply(x, ys);
  par.apply(x, yp);
  EXPECT_LT(linalg::max_abs_diff(ys, yp), 1e-12);
}

}  // namespace
}  // namespace mecoff::parallel
