// Unit tests for the spectral cut: Fiedler values against analytic
// spectra, sign/sweep splitting, and degenerate-input behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mincut/stoer_wagner.hpp"
#include "parallel/thread_pool.hpp"
#include "spectral/bipartitioner.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/splitter.hpp"

namespace mecoff::spectral {
namespace {

using graph::Bipartition;
using graph::WeightedGraph;

TEST(Fiedler, PathGraphValue) {
  const std::size_t n = 16;
  const FiedlerResult r = fiedler_pair(graph::path_graph(n));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value,
              2.0 - 2.0 * std::cos(std::numbers::pi / static_cast<double>(n)),
              1e-7);
}

TEST(Fiedler, CompleteGraphValue) {
  const FiedlerResult r = fiedler_pair(graph::complete_graph(9));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 9.0, 1e-7);
}

TEST(Fiedler, VectorIsUnitAndOrthogonalToConstant) {
  const FiedlerResult r = fiedler_pair(graph::grid_graph(4, 5));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::norm2(r.vector), 1.0, 1e-8);
  double sum = 0;
  for (const double v : r.vector) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-7);
}

TEST(Fiedler, EdgeWeightScalingScalesValue) {
  const FiedlerResult a = fiedler_pair(graph::cycle_graph(10, 1.0, 1.0));
  const FiedlerResult b = fiedler_pair(graph::cycle_graph(10, 1.0, 3.0));
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_NEAR(b.value, 3.0 * a.value, 1e-6);
}

TEST(Fiedler, BackendsAgree) {
  graph::NetgenParams p;
  p.nodes = 60;
  p.edges = 240;
  p.components = 1;
  p.seed = 3;
  const WeightedGraph g = graph::netgen_style(p);
  FiedlerOptions lanczos;
  FiedlerOptions power;
  power.backend = EigenBackend::kShiftedPower;
  power.tolerance = 1e-10;
  const FiedlerResult a = fiedler_pair(g, lanczos);
  const FiedlerResult b = fiedler_pair(g, power);
  EXPECT_NEAR(a.value, b.value, 1e-3 * (1.0 + a.value));
}

TEST(Fiedler, PoolBackendMatchesSerial) {
  graph::NetgenParams p;
  p.nodes = 120;
  p.edges = 500;
  p.components = 1;
  p.seed = 8;
  const WeightedGraph g = graph::netgen_style(p);
  const FiedlerResult serial = fiedler_pair(g);
  parallel::ThreadPool pool(3);
  FiedlerOptions opts;
  opts.pool = &pool;
  const FiedlerResult parallel_r = fiedler_pair(g, opts);
  EXPECT_NEAR(serial.value, parallel_r.value, 1e-7 * (1.0 + serial.value));
}

TEST(Fiedler, RequiresTwoNodes) {
  EXPECT_THROW(fiedler_pair(graph::path_graph(1)),
               mecoff::PreconditionError);
}

TEST(Splitter, SignSplitSeparatesBarbell) {
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 10.0);
  const FiedlerResult f = fiedler_pair(g);
  const Bipartition cut = sign_split(g, f.vector);
  EXPECT_DOUBLE_EQ(cut.cut_weight, 1.0);  // the bridge
  EXPECT_EQ(cut.size(0), 5u);
  EXPECT_EQ(cut.size(1), 5u);
}

TEST(Splitter, SweepNeverWorseThanSign) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    graph::NetgenParams p;
    p.nodes = 80;
    p.edges = 300;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    const FiedlerResult f = fiedler_pair(g);
    const Bipartition sign = sign_split(g, f.vector);
    const Bipartition sweep = sweep_split(g, f.vector);
    EXPECT_LE(sweep.cut_weight, sign.cut_weight + 1e-9);
  }
}

TEST(Splitter, SweepFindsBridgeOnWeightedPath) {
  // Path with one light edge in the middle: the best threshold cut is
  // exactly that edge.
  graph::GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 9.0);
  b.add_edge(1, 2, 9.0);
  b.add_edge(2, 3, 0.5);
  b.add_edge(3, 4, 9.0);
  b.add_edge(4, 5, 9.0);
  const WeightedGraph g = b.build();
  const FiedlerResult f = fiedler_pair(g);
  const Bipartition cut = sweep_split(g, f.vector);
  EXPECT_NEAR(cut.cut_weight, 0.5, 1e-9);
}

TEST(Splitter, BothSidesNonEmptyOnSweep) {
  const WeightedGraph g = graph::complete_graph(7);
  const FiedlerResult f = fiedler_pair(g);
  const Bipartition cut = sweep_split(g, f.vector);
  EXPECT_GE(cut.size(0), 1u);
  EXPECT_GE(cut.size(1), 1u);
}

TEST(Splitter, SweepOnTinyGraphs) {
  const WeightedGraph g2 = graph::path_graph(2, 1.0, 4.0);
  const FiedlerResult f = fiedler_pair(g2);
  const Bipartition cut = sweep_split(g2, f.vector);
  EXPECT_DOUBLE_EQ(cut.cut_weight, 4.0);
  EXPECT_EQ(cut.size(0), 1u);
}

TEST(Bipartitioner, NearOptimalOnBarbell) {
  SpectralBipartitioner cutter;
  const WeightedGraph g = graph::barbell_graph(6, 2.0, 12.0);
  const Bipartition cut = cutter.bipartition(g);
  EXPECT_DOUBLE_EQ(cut.cut_weight, 2.0);
  EXPECT_GT(cutter.last_fiedler_value(), 0.0);
}

TEST(Bipartitioner, MatchesStoerWagnerOnClusteredGraphs) {
  // Spectral sweep should find the (unique, very light) cluster boundary
  // that Stoer–Wagner provably finds.
  SpectralBipartitioner cutter;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    graph::NetgenParams p;
    p.nodes = 40;
    p.edges = 140;
    p.components = 1;
    p.cluster_size = 20;
    p.heavy_weight_multiplier = 20.0;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    const Bipartition spectral_cut = cutter.bipartition(g);
    const Bipartition exact = mincut::stoer_wagner(g);
    // The sweep cut is restricted to Fiedler-order threshold cuts, so a
    // constant-factor gap vs the unconstrained optimum is expected;
    // 3x holds comfortably on these clustered instances.
    EXPECT_LE(spectral_cut.cut_weight, 3.0 * exact.cut_weight + 1e-9);
  }
}

TEST(Bipartitioner, EmptyGraph) {
  SpectralBipartitioner cutter;
  const Bipartition cut = cutter.bipartition(WeightedGraph{});
  EXPECT_TRUE(cut.side.empty());
  EXPECT_DOUBLE_EQ(cut.cut_weight, 0.0);
}

TEST(Bipartitioner, SingleNodeGoesToSideZero) {
  SpectralBipartitioner cutter;
  const Bipartition cut = cutter.bipartition(graph::path_graph(1));
  ASSERT_EQ(cut.side.size(), 1u);
  EXPECT_EQ(cut.side[0], 0);
}

TEST(Bipartitioner, DisconnectedGraphGetsZeroCut) {
  graph::GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 3.0);
  b.add_edge(2, 3, 3.0);
  b.add_edge(3, 4, 3.0);
  SpectralBipartitioner cutter;
  const Bipartition cut = cutter.bipartition(b.build());
  EXPECT_DOUBLE_EQ(cut.cut_weight, 0.0);
  EXPECT_GE(cut.size(1), 1u);
}

TEST(Bipartitioner, Name) {
  EXPECT_EQ(SpectralBipartitioner{}.name(), "spectral");
}

}  // namespace
}  // namespace mecoff::spectral

namespace mecoff::spectral {
namespace {

TEST(SplitterRatio, PrefersBalancedBoundaries) {
  // A clique of 7 with a light pendant: plain sweep happily shaves the
  // pendant (cut 0.5); the ratio sweep weighs the sliver's tiny weight
  // against it and picks a more balanced boundary only when it pays.
  graph::GraphBuilder b;
  for (int i = 0; i < 8; ++i) b.add_node(1.0);
  for (int i = 0; i < 7; ++i)
    for (int j = i + 1; j < 7; ++j)
      b.add_edge(static_cast<graph::NodeId>(i),
                 static_cast<graph::NodeId>(j), 5.0);
  b.add_edge(6, 7, 0.5);
  const graph::WeightedGraph g = b.build();
  const FiedlerResult f = fiedler_pair(g);
  const graph::Bipartition plain = sweep_split(g, f.vector);
  const graph::Bipartition ratio = sweep_split_ratio(g, f.vector);
  EXPECT_DOUBLE_EQ(plain.cut_weight, 0.5);  // pendant shaved
  // Ratio score of the pendant split: 0.5 / 1 = 0.5; any balanced clique
  // split scores >= 5·(cut edges)/3.5 ≫ 0.5 — pendant still wins here,
  // which is CORRECT (it is the best ratio too).
  EXPECT_DOUBLE_EQ(ratio.cut_weight, 0.5);
}

TEST(SplitterRatio, BalancedOnBarbell) {
  const graph::WeightedGraph g = graph::barbell_graph(6, 1.0, 10.0);
  const FiedlerResult f = fiedler_pair(g);
  const graph::Bipartition ratio = sweep_split_ratio(g, f.vector);
  EXPECT_DOUBLE_EQ(ratio.cut_weight, 1.0);
  EXPECT_EQ(ratio.size(0), 6u);
}

TEST(SplitterRatio, BeatsPlainSweepOnRatioMetric) {
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    graph::NetgenParams p;
    p.nodes = 70;
    p.edges = 280;
    p.components = 1;
    p.seed = seed;
    const graph::WeightedGraph g = graph::netgen_style(p);
    const FiedlerResult f = fiedler_pair(g);
    const graph::Bipartition plain = sweep_split(g, f.vector);
    const graph::Bipartition ratio = sweep_split_ratio(g, f.vector);
    const auto score = [&](const graph::Bipartition& cut) {
      double w0 = 0.0;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
        if (cut.side[v] == 0) w0 += g.node_weight(v);
      const double min_side = std::min(w0, g.total_node_weight() - w0);
      return min_side > 0 ? cut.cut_weight / min_side
                          : std::numeric_limits<double>::infinity();
    };
    EXPECT_LE(score(ratio), score(plain) + 1e-9) << seed;
    // And plain sweep stays the raw-cut champion.
    EXPECT_LE(plain.cut_weight, ratio.cut_weight + 1e-9) << seed;
  }
}

TEST(SplitterRatio, PolicyDispatch) {
  const graph::WeightedGraph g = graph::barbell_graph(4, 1.0, 8.0);
  const FiedlerResult f = fiedler_pair(g);
  const graph::Bipartition via_policy =
      split_by_policy(g, f.vector, SplitPolicy::kSweepRatio);
  const graph::Bipartition direct = sweep_split_ratio(g, f.vector);
  EXPECT_EQ(via_policy.side, direct.side);
}

}  // namespace
}  // namespace mecoff::spectral
