// Tests for the adaptive multi-user coordinator.
#include <gtest/gtest.h>

#include "appmodel/synthetic_apps.hpp"
#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/adaptive.hpp"

namespace mecoff::mec {
namespace {

SystemParams adaptive_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 12.0;
  p.bandwidth = 15.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 60.0;
  p.contention_factor = 0.05;
  return p;
}

UserApp arriving_user(std::uint64_t seed) {
  graph::NetgenParams gp;
  gp.nodes = 60;
  gp.edges = 240;
  gp.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  user.unoffloadable.assign(60, false);
  user.unoffloadable[0] = true;
  return user;
}

TEST(Adaptive, ArrivalsGetPlacedImmediately) {
  AdaptiveCoordinator coord(adaptive_params());
  const std::size_t a = coord.add_user(arriving_user(1));
  const std::size_t b = coord.add_user(arriving_user(2));
  EXPECT_EQ(coord.active_users(), 2u);
  EXPECT_EQ(coord.placement_of(a).size(), 60u);
  EXPECT_EQ(coord.placement_of(b).size(), 60u);
  // Pinned node stays local.
  EXPECT_EQ(coord.placement_of(a)[0], Placement::kLocal);
  // Something offloaded (heavy compute, decent server).
  std::size_t remote = 0;
  for (const Placement p : coord.placement_of(a))
    if (p == Placement::kRemote) ++remote;
  EXPECT_GT(remote, 0u);
}

TEST(Adaptive, ExistingPlacementsAreFrozenOnArrival) {
  AdaptiveCoordinator coord(adaptive_params());
  const std::size_t first = coord.add_user(arriving_user(3));
  const std::vector<Placement> before = coord.placement_of(first);
  for (std::uint64_t seed = 10; seed < 16; ++seed)
    coord.add_user(arriving_user(seed));
  EXPECT_EQ(coord.placement_of(first), before);
}

TEST(Adaptive, LaterArrivalsSeeMoreContention) {
  // With the server filling up, later identical users offload no more
  // than the first one did.
  AdaptiveCoordinator coord(adaptive_params());
  const auto remote_count = [&](std::size_t id) {
    std::size_t remote = 0;
    for (const Placement p : coord.placement_of(id))
      if (p == Placement::kRemote) ++remote;
    return remote;
  };
  const std::size_t first = coord.add_user(arriving_user(42));
  std::size_t last = first;
  for (int i = 0; i < 10; ++i) last = coord.add_user(arriving_user(42));
  EXPECT_LE(remote_count(last), remote_count(first));
}

TEST(Adaptive, RemovalFreesLoad) {
  AdaptiveCoordinator coord(adaptive_params());
  std::vector<std::size_t> ids;
  for (std::uint64_t seed = 20; seed < 26; ++seed)
    ids.push_back(coord.add_user(arriving_user(seed)));
  const double crowded = coord.current_cost().objective();
  coord.remove_user(ids[0]);
  coord.remove_user(ids[1]);
  EXPECT_EQ(coord.active_users(), 4u);
  EXPECT_LT(coord.current_cost().objective(), crowded);
  EXPECT_THROW((void)coord.placement_of(ids[0]), PreconditionError);
}

TEST(Adaptive, ReoptimizeCollectsExactlyThePositiveDrift) {
  AdaptiveCoordinator coord(adaptive_params());
  for (std::uint64_t seed = 30; seed < 42; ++seed)
    coord.add_user(arriving_user(seed));
  // Drift is SIGNED: the path-dependent incremental state may be
  // better or worse than a fresh all-remote greedy.
  const double drift = coord.drift();
  const double gained = coord.reoptimize();
  if (drift > 0.0) {
    EXPECT_NEAR(gained, drift, 1e-6 * (1.0 + drift));
    EXPECT_NEAR(coord.drift(), 0.0, 1e-6 * (1.0 + drift));
  } else {
    // Fresh solve was no better: nothing adopted, nothing gained.
    EXPECT_DOUBLE_EQ(gained, 0.0);
    EXPECT_NEAR(coord.drift(), drift, 1e-6 * (1.0 + std::abs(drift)));
  }
}

TEST(Adaptive, ReoptimizeNeverWorsens) {
  AdaptiveCoordinator coord(adaptive_params());
  for (std::uint64_t seed = 50; seed < 58; ++seed)
    coord.add_user(arriving_user(seed));
  const double before = coord.current_cost().objective();
  coord.reoptimize();
  EXPECT_LE(coord.current_cost().objective(), before + 1e-9);
}

TEST(Adaptive, ChurnScenarioStaysConsistent) {
  AdaptiveCoordinator coord(adaptive_params());
  std::vector<std::size_t> alive;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    alive.push_back(coord.add_user(arriving_user(seed)));
    if (alive.size() > 6) {
      coord.remove_user(alive.front());
      alive.erase(alive.begin());
    }
  }
  EXPECT_EQ(coord.active_users(), alive.size());
  for (const std::size_t id : alive)
    EXPECT_EQ(coord.placement_of(id).size(), 60u);
  coord.reoptimize();
  for (const std::size_t id : alive)
    EXPECT_EQ(coord.placement_of(id)[0], Placement::kLocal);  // pinned
}

TEST(Adaptive, EmptyCoordinatorIsWellBehaved) {
  AdaptiveCoordinator coord(adaptive_params());
  EXPECT_EQ(coord.active_users(), 0u);
  EXPECT_DOUBLE_EQ(coord.drift(), 0.0);
  EXPECT_DOUBLE_EQ(coord.reoptimize(), 0.0);
  EXPECT_DOUBLE_EQ(coord.current_cost().objective(), 0.0);
}

TEST(Adaptive, RealisticAppsMix) {
  AdaptiveCoordinator coord(adaptive_params());
  for (const appmodel::Application& app :
       {appmodel::make_voice_assistant_app(),
        appmodel::make_slam_navigation_app(),
        appmodel::make_face_recognition_app()}) {
    UserApp user;
    user.graph = app.to_graph();
    user.unoffloadable = app.unoffloadable_mask();
    user.components = app.component_ids();
    const std::size_t id = coord.add_user(std::move(user));
    EXPECT_EQ(coord.placement_of(id).size(), app.num_functions());
  }
  EXPECT_GE(coord.current_cost().objective(), 0.0);
}

}  // namespace
}  // namespace mecoff::mec
