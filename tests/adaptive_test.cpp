// Tests for the adaptive multi-user coordinator.
#include <gtest/gtest.h>

#include "appmodel/synthetic_apps.hpp"
#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/adaptive.hpp"

namespace mecoff::mec {
namespace {

SystemParams adaptive_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 12.0;
  p.bandwidth = 15.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 60.0;
  p.contention_factor = 0.05;
  return p;
}

UserApp arriving_user(std::uint64_t seed) {
  graph::NetgenParams gp;
  gp.nodes = 60;
  gp.edges = 240;
  gp.seed = seed;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  user.unoffloadable.assign(60, false);
  user.unoffloadable[0] = true;
  return user;
}

TEST(Adaptive, ArrivalsGetPlacedImmediately) {
  AdaptiveCoordinator coord(adaptive_params());
  const std::size_t a = coord.add_user(arriving_user(1));
  const std::size_t b = coord.add_user(arriving_user(2));
  EXPECT_EQ(coord.active_users(), 2u);
  EXPECT_EQ(coord.placement_of(a).size(), 60u);
  EXPECT_EQ(coord.placement_of(b).size(), 60u);
  // Pinned node stays local.
  EXPECT_EQ(coord.placement_of(a)[0], Placement::kLocal);
  // Something offloaded (heavy compute, decent server).
  std::size_t remote = 0;
  for (const Placement p : coord.placement_of(a))
    if (p == Placement::kRemote) ++remote;
  EXPECT_GT(remote, 0u);
}

TEST(Adaptive, ExistingPlacementsAreFrozenOnArrival) {
  AdaptiveCoordinator coord(adaptive_params());
  const std::size_t first = coord.add_user(arriving_user(3));
  const std::vector<Placement> before = coord.placement_of(first);
  for (std::uint64_t seed = 10; seed < 16; ++seed)
    coord.add_user(arriving_user(seed));
  EXPECT_EQ(coord.placement_of(first), before);
}

TEST(Adaptive, LaterArrivalsSeeMoreContention) {
  // With the server filling up, later identical users offload no more
  // than the first one did.
  AdaptiveCoordinator coord(adaptive_params());
  const auto remote_count = [&](std::size_t id) {
    std::size_t remote = 0;
    for (const Placement p : coord.placement_of(id))
      if (p == Placement::kRemote) ++remote;
    return remote;
  };
  const std::size_t first = coord.add_user(arriving_user(42));
  std::size_t last = first;
  for (int i = 0; i < 10; ++i) last = coord.add_user(arriving_user(42));
  EXPECT_LE(remote_count(last), remote_count(first));
}

TEST(Adaptive, RemovalFreesLoad) {
  AdaptiveCoordinator coord(adaptive_params());
  std::vector<std::size_t> ids;
  for (std::uint64_t seed = 20; seed < 26; ++seed)
    ids.push_back(coord.add_user(arriving_user(seed)));
  const double crowded = coord.current_cost().objective();
  coord.remove_user(ids[0]);
  coord.remove_user(ids[1]);
  EXPECT_EQ(coord.active_users(), 4u);
  EXPECT_LT(coord.current_cost().objective(), crowded);
  EXPECT_THROW((void)coord.placement_of(ids[0]), PreconditionError);
}

TEST(Adaptive, ReoptimizeCollectsExactlyThePositiveDrift) {
  AdaptiveCoordinator coord(adaptive_params());
  for (std::uint64_t seed = 30; seed < 42; ++seed)
    coord.add_user(arriving_user(seed));
  // Drift is SIGNED: the path-dependent incremental state may be
  // better or worse than a fresh all-remote greedy.
  const double drift = coord.drift();
  const double gained = coord.reoptimize();
  if (drift > 0.0) {
    EXPECT_NEAR(gained, drift, 1e-6 * (1.0 + drift));
    EXPECT_NEAR(coord.drift(), 0.0, 1e-6 * (1.0 + drift));
  } else {
    // Fresh solve was no better: nothing adopted, nothing gained.
    EXPECT_DOUBLE_EQ(gained, 0.0);
    EXPECT_NEAR(coord.drift(), drift, 1e-6 * (1.0 + std::abs(drift)));
  }
}

TEST(Adaptive, ReoptimizeNeverWorsens) {
  AdaptiveCoordinator coord(adaptive_params());
  for (std::uint64_t seed = 50; seed < 58; ++seed)
    coord.add_user(arriving_user(seed));
  const double before = coord.current_cost().objective();
  coord.reoptimize();
  EXPECT_LE(coord.current_cost().objective(), before + 1e-9);
}

TEST(Adaptive, ChurnScenarioStaysConsistent) {
  AdaptiveCoordinator coord(adaptive_params());
  std::vector<std::size_t> alive;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    alive.push_back(coord.add_user(arriving_user(seed)));
    if (alive.size() > 6) {
      coord.remove_user(alive.front());
      alive.erase(alive.begin());
    }
  }
  EXPECT_EQ(coord.active_users(), alive.size());
  for (const std::size_t id : alive)
    EXPECT_EQ(coord.placement_of(id).size(), 60u);
  coord.reoptimize();
  for (const std::size_t id : alive)
    EXPECT_EQ(coord.placement_of(id)[0], Placement::kLocal);  // pinned
}

TEST(Adaptive, EmptyCoordinatorIsWellBehaved) {
  AdaptiveCoordinator coord(adaptive_params());
  EXPECT_EQ(coord.active_users(), 0u);
  EXPECT_DOUBLE_EQ(coord.drift(), 0.0);
  EXPECT_DOUBLE_EQ(coord.reoptimize(), 0.0);
  EXPECT_DOUBLE_EQ(coord.current_cost().objective(), 0.0);
}

TEST(Adaptive, RemovingUnknownOrDeadIdsThrowsTyped) {
  AdaptiveCoordinator coord(adaptive_params());
  // Unknown id on an empty coordinator.
  EXPECT_THROW(coord.remove_user(0), PreconditionError);
  EXPECT_THROW(coord.remove_user(99), PreconditionError);
  const std::size_t id = coord.add_user(arriving_user(60));
  coord.remove_user(id);
  // Double remove: the id is dead, not recyclable into UB.
  EXPECT_THROW(coord.remove_user(id), PreconditionError);
  EXPECT_THROW((void)coord.placement_of(id), PreconditionError);
  EXPECT_EQ(coord.active_users(), 0u);
}

TEST(Adaptive, DrainedCoordinatorBehavesLikeEmpty) {
  AdaptiveCoordinator coord(adaptive_params());
  std::vector<std::size_t> ids;
  for (std::uint64_t seed = 70; seed < 74; ++seed)
    ids.push_back(coord.add_user(arriving_user(seed)));
  for (const std::size_t id : ids) coord.remove_user(id);
  // Zero ACTIVE users (not zero ever-admitted): everything is a no-op.
  EXPECT_EQ(coord.active_users(), 0u);
  EXPECT_DOUBLE_EQ(coord.drift(), 0.0);
  EXPECT_DOUBLE_EQ(coord.reoptimize(), 0.0);
  EXPECT_DOUBLE_EQ(coord.current_cost().objective(), 0.0);
  // And the coordinator is still usable afterwards.
  const std::size_t fresh = coord.add_user(arriving_user(80));
  EXPECT_EQ(coord.placement_of(fresh).size(), 60u);
}

TEST(Adaptive, PlacementsStableAcrossInterleavedChurnBursts) {
  AdaptiveCoordinator coord(adaptive_params());
  const std::size_t anchor = coord.add_user(arriving_user(90));
  const std::vector<Placement> frozen = coord.placement_of(anchor);
  std::vector<std::size_t> churn;
  for (int burst = 0; burst < 3; ++burst) {
    for (std::uint64_t seed = 0; seed < 4; ++seed)
      churn.push_back(coord.add_user(arriving_user(200 + 10 * burst + seed)));
    for (int i = 0; i < 2; ++i) {
      coord.remove_user(churn.front());
      churn.erase(churn.begin());
    }
    // Arrivals and departures never touch a bystander's placement.
    EXPECT_EQ(coord.placement_of(anchor), frozen);
  }
  EXPECT_EQ(coord.active_users(), 1 + churn.size());
}

TEST(Adaptive, DegradeHooksValidateAndGateOnHysteresis) {
  DegradePolicy relaxed;
  relaxed.hysteresis_margin = 0.0;
  AdaptiveCoordinator coord(adaptive_params(), PipelineOptions{}, relaxed);
  for (std::uint64_t seed = 300; seed < 306; ++seed)
    coord.add_user(arriving_user(seed));

  EXPECT_THROW(coord.on_server_degraded(0.0), PreconditionError);
  EXPECT_THROW(coord.on_server_degraded(1.5), PreconditionError);
  EXPECT_THROW(coord.on_server_degraded(0.5, -1.0), PreconditionError);
  EXPECT_FALSE(coord.server_degraded());  // rejected calls changed nothing

  const double healthy = coord.current_cost().objective();
  coord.on_server_degraded(0.05, 0.1);  // server nearly gone
  EXPECT_TRUE(coord.server_degraded());
  // Whatever was adopted, the state stays consistent and evaluable.
  EXPECT_GT(coord.current_cost().objective(), 0.0);

  coord.on_server_recovered();
  EXPECT_FALSE(coord.server_degraded());
  // Back under nominal params a reoptimize leaves us no worse than any
  // fresh solve — in particular no worse than re-deriving from scratch.
  coord.reoptimize();
  const double recovered = coord.current_cost().objective();
  EXPECT_GT(recovered, 0.0);
  EXPECT_LE(recovered, healthy * 10.0);  // same order of magnitude
  // Recovering while healthy is a no-op, not an error.
  EXPECT_EQ(coord.on_server_recovered(), 0u);
}

TEST(Adaptive, HugeHysteresisMarginSuppressesDegradeReplacement) {
  DegradePolicy stubborn;
  stubborn.hysteresis_margin = 1e9;
  AdaptiveCoordinator coord(adaptive_params(), PipelineOptions{}, stubborn);
  std::vector<std::size_t> ids;
  for (std::uint64_t seed = 400; seed < 405; ++seed)
    ids.push_back(coord.add_user(arriving_user(seed)));
  std::vector<std::vector<Placement>> before;
  for (const std::size_t id : ids) before.push_back(coord.placement_of(id));

  for (int flap = 0; flap < 3; ++flap) {
    EXPECT_EQ(coord.on_server_degraded(0.2, 0.2), 0u);
    EXPECT_EQ(coord.on_server_recovered(), 0u);
  }
  EXPECT_GE(coord.suppressed_replacements(), 3u);
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(coord.placement_of(ids[i]), before[i]);  // no thrash
}

TEST(Adaptive, DegradeHooksOnZeroUsersAreNoOps) {
  AdaptiveCoordinator coord(adaptive_params());
  EXPECT_EQ(coord.on_server_degraded(0.5), 0u);
  EXPECT_TRUE(coord.server_degraded());
  EXPECT_EQ(coord.on_server_recovered(), 0u);
  EXPECT_FALSE(coord.server_degraded());
}

TEST(Adaptive, RealisticAppsMix) {
  AdaptiveCoordinator coord(adaptive_params());
  for (const appmodel::Application& app :
       {appmodel::make_voice_assistant_app(),
        appmodel::make_slam_navigation_app(),
        appmodel::make_face_recognition_app()}) {
    UserApp user;
    user.graph = app.to_graph();
    user.unoffloadable = app.unoffloadable_mask();
    user.components = app.component_ids();
    const std::size_t id = coord.add_user(std::move(user));
    EXPECT_EQ(coord.placement_of(id).size(), app.num_functions());
  }
  EXPECT_GE(coord.current_cost().objective(), 0.0);
}

}  // namespace
}  // namespace mecoff::mec
