// Failure injection: every public API fed hostile input must fail
// CLEANLY — a typed exception or an error Result, never UB, never a
// silent wrong answer. These tests document the failure contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "appmodel/dsl_parser.hpp"
#include "appmodel/trace_import.hpp"
#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "graph/validation.hpp"
#include "lpa/compressor.hpp"
#include "lpa/pipeline.hpp"
#include "mec/costs.hpp"
#include "mec/greedy.hpp"
#include "mec/multiserver.hpp"
#include "mec/profiles.hpp"
#include "mec/offloader.hpp"
#include "sim/chaos.hpp"
#include "sim/dag_executor.hpp"
#include "sim/engine.hpp"
#include "sim/fault_script.hpp"
#include "sim/resources.hpp"

namespace mecoff {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FailureInjection, GraphBuilderRejectsNonFiniteWeights) {
  graph::GraphBuilder b;
  EXPECT_THROW(b.add_node(kNan), PreconditionError);
  EXPECT_THROW(b.add_node(kInf), PreconditionError);
  b.add_node(1.0);
  b.add_node(1.0);
  EXPECT_THROW(b.add_edge(0, 1, kNan), PreconditionError);
  EXPECT_THROW(b.add_edge(0, 1, -kInf), PreconditionError);
  EXPECT_THROW(b.set_node_weight(0, kNan), PreconditionError);
}

TEST(FailureInjection, GeneratorsRejectContradictoryParams) {
  graph::NetgenParams p;
  p.nodes = 5;
  p.components = 10;  // more components than nodes
  EXPECT_THROW(graph::netgen_style(p), PreconditionError);
  p = graph::NetgenParams{};
  p.min_node_weight = 10.0;
  p.max_node_weight = 1.0;  // inverted range
  EXPECT_THROW(graph::netgen_style(p), PreconditionError);
  p = graph::NetgenParams{};
  p.cluster_size = 0;
  EXPECT_THROW(graph::netgen_style(p), PreconditionError);
}

TEST(FailureInjection, EdgeListParserSurvivesGarbageBytes) {
  // Arbitrary junk must produce an error Result, not a crash.
  for (const char* junk :
       {"nodes x\n", "nodes 2\nedge 0 1\n", "nodes 2\nedge 0 1 1e999x\n",
        "nodes -5\n", "\x01\x02\x03", "nodes 2\nnode 1 nan... \n"}) {
    const auto r = graph::parse_edge_list(junk);
    EXPECT_FALSE(r.ok()) << junk;
  }
}

TEST(FailureInjection, ValidatorFlagsHandCraftedCorruption) {
  // The validator itself must catch what a buggy transformation would
  // produce; here the "corruption" is a legal-but-wrong label vector
  // applied downstream instead (the graph type itself is immutable, so
  // direct corruption is not constructible — which is the point).
  const graph::WeightedGraph good = graph::barbell_graph(3, 1.0, 5.0);
  EXPECT_TRUE(graph::validate(good).ok);

  // Compressor with an undersized label vector must throw, not read OOB.
  EXPECT_THROW(lpa::compress_by_labels(good, {0, 1}), PreconditionError);
}

TEST(FailureInjection, SubgraphRejectsOutOfRangeAndDuplicates) {
  const graph::WeightedGraph g = graph::path_graph(4);
  const std::vector<graph::NodeId> bad_range{0, 9};
  EXPECT_THROW(graph::induced_subgraph(g, bad_range), PreconditionError);
  const std::vector<graph::NodeId> dup{1, 1};
  EXPECT_THROW(graph::induced_subgraph(g, dup), PreconditionError);
  EXPECT_THROW(graph::remove_nodes(g, std::vector<bool>(2, false)),
               PreconditionError);
}

TEST(FailureInjection, PipelineRejectsMismatchedMasks) {
  const graph::WeightedGraph g = graph::path_graph(4);
  EXPECT_THROW(lpa::compress_application(g, std::vector<bool>(3, false),
                                         lpa::PropagationConfig{}),
               PreconditionError);
  const std::vector<bool> mask(4, false);
  const std::vector<std::uint32_t> comps(2, 0);  // wrong size
  EXPECT_THROW(lpa::compress_application(g, mask, lpa::PropagationConfig{},
                                         nullptr, &comps),
               PreconditionError);
}

TEST(FailureInjection, CostModelRejectsBrokenSystems) {
  mec::UserApp app;
  app.graph = graph::path_graph(2);
  mec::SystemParams bad;
  bad.bandwidth = 0.0;
  mec::MecSystem broken{bad, {app}};
  EXPECT_THROW(
      mec::evaluate(broken, mec::OffloadingScheme::all_local(broken)),
      PreconditionError);

  mec::MecSystem ok{mec::SystemParams{}, {app}};
  mec::OffloadingScheme wrong_shape;
  wrong_shape.placement = {{mec::Placement::kLocal}};  // 1 node, need 2
  EXPECT_THROW(mec::evaluate(ok, wrong_shape), PreconditionError);
}

TEST(FailureInjection, GreedyRejectsOutOfRangePartNodes) {
  mec::UserApp app;
  app.graph = graph::path_graph(3);
  mec::MecSystem system{mec::SystemParams{}, {app}};
  mec::Part part;
  part.user = 0;
  part.nodes = {7};  // out of range
  part.weight = 1.0;
  EXPECT_THROW(mec::generate_scheme(system, {part}), PreconditionError);

  part.nodes = {0};
  part.user = 5;  // no such user
  EXPECT_THROW(mec::generate_scheme(system, {part}), PreconditionError);
}

TEST(FailureInjection, SimEngineRejectsTimeTravel) {
  sim::SimEngine engine;
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim::FifoResource(engine, 0.0), PreconditionError);
  EXPECT_THROW(sim::FifoResource(engine, -3.0), PreconditionError);
  sim::FifoResource server(engine, 1.0);
  EXPECT_THROW(server.submit(-1.0, nullptr), PreconditionError);
}

TEST(FailureInjection, DagExecutorReturnsErrorsNotCrashes) {
  appmodel::Application app("a");
  app.add_function({"f", 1, false, ""});
  mec::UserApp user;
  user.graph = app.to_graph();
  mec::MecSystem system{mec::SystemParams{}, {user}};
  const mec::OffloadingScheme scheme =
      mec::OffloadingScheme::all_local(system);
  // Empty app list, wrong sizes: Result errors.
  EXPECT_FALSE(sim::execute_dag(system, {}, scheme).ok());
  appmodel::Application bigger("b");
  bigger.add_function({"x", 1, false, ""});
  bigger.add_function({"y", 1, false, ""});
  EXPECT_FALSE(sim::execute_dag(system, {bigger}, scheme).ok());
}

TEST(FailureInjection, DslAndTraceParsersNeverThrowOnTextInput) {
  // Parsers promise Result errors for ANY text, including binary junk.
  for (const char* junk :
       {"\xff\xfe\x00", "app\n\n\n", "call a b data=2\n",
        "function  compute=1\n", "app X\nfunction f compute=1e999\n"}) {
    EXPECT_NO_THROW({
      const auto r = appmodel::parse_app_dsl(junk);
      (void)r.ok();
    }) << junk;
    EXPECT_NO_THROW({
      const auto r = appmodel::import_trace(junk);
      (void)r.ok();
    }) << junk;
  }
}

TEST(FailureInjection, MultiServerRejectsBrokenSpecs) {
  mec::MultiServerSystem system;
  system.users.push_back(
      mec::UserApp{graph::path_graph(2), {}, {}});
  // No servers.
  EXPECT_THROW(mec::MultiServerOffloader{}.solve(system),
               PreconditionError);
  system.servers.push_back(mec::ServerSpec{-1.0, 10.0, 1.0});
  EXPECT_THROW(mec::MultiServerOffloader{}.solve(system),
               PreconditionError);
}

TEST(FailureInjection, FaultScriptRejectsHostileTimesAndSeverities) {
  sim::FaultScript script;
  EXPECT_THROW(script.crash_server(-0.001, 0), PreconditionError);
  EXPECT_THROW(script.crash_server(kNan, 0), PreconditionError);
  EXPECT_THROW(script.crash_server(kInf, 0), PreconditionError);
  EXPECT_THROW(script.degrade_link(1.0, 0, kNan), PreconditionError);
  EXPECT_THROW(script.degrade_link(1.0, 0, 1.0), PreconditionError);
  EXPECT_TRUE(script.empty());

  // Out-of-order adds are LEGAL and normalized by ordered().
  script.crash_server(9.0, 0).recover_server(3.0, 0);
  const auto ordered = script.ordered();
  EXPECT_DOUBLE_EQ(ordered.front().time, 3.0);
  EXPECT_DOUBLE_EQ(ordered.back().time, 9.0);
}

TEST(FailureInjection, FaultScriptParserSurvivesGarbageBytes) {
  for (const char* junk :
       {"at nan crash 0\n", "at 1e999 crash 0\n", "at -3 degrade 0 0.5\n",
        "at 1 degrade 0 nan\n", "at\n", "\xff\xfe garbage",
        "at 1 crash zero\n"}) {
    const auto r = sim::FaultScript::parse(junk);
    EXPECT_FALSE(r.ok()) << junk;
    EXPECT_FALSE(r.error().message.empty());
  }
}

TEST(FailureInjection, FailoverWithZeroSurvivorsFailsCleanAllLocal) {
  mec::MultiServerSystem system;
  system.device.mobile_power = 1.0;
  system.device.mobile_capacity = 5.0;
  system.servers = {mec::ServerSpec{300.0, 20.0, 8.0}};
  mec::UserApp user;
  user.graph = graph::path_graph(6);
  user.unoffloadable.assign(6, false);
  system.users = {user, user};

  mec::FailoverController controller(system);
  const auto step = controller.on_server_failed(0);
  // The LAST server died: a typed error reports it, and the state has
  // already degraded to a valid all-local scheme — never an invalid
  // placement, never a throw.
  ASSERT_FALSE(step.ok());
  EXPECT_NE(step.error().message.find("no survivors"), std::string::npos);
  EXPECT_TRUE(controller.all_local_fallback());
  for (const auto& placement : controller.current().scheme.placement)
    for (const mec::Placement p : placement)
      EXPECT_EQ(p, mec::Placement::kLocal);
  // Follow-up faults on the dead world stay typed errors.
  EXPECT_FALSE(controller.on_server_failed(0).ok());
  EXPECT_FALSE(controller.on_link_degraded(0, 0.5).ok());
  EXPECT_FALSE(controller.on_server_failed(7).ok());    // no such server
  EXPECT_FALSE(controller.on_user_disconnected(9).ok()); // no such user
}

TEST(FailureInjection, ZeroDeadlineDegradesGracefully) {
  mec::UserApp user;
  user.graph = graph::path_graph(8);
  mec::MecSystem system{mec::SystemParams{}, {user}};
  mec::PipelineOptions options;
  options.deadline.seconds = 0.0;  // pathological budget, legal input
  mec::PipelineOffloader offloader(options);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));
  EXPECT_TRUE(offloader.last_stats().deadline_expired);
}

TEST(FailureInjection, ChaosHarnessRejectsBrokenSystems) {
  sim::FaultScript script;
  script.crash_server(1.0, 0);
  mec::MultiServerSystem no_servers;
  no_servers.users.push_back(mec::UserApp{graph::path_graph(2), {}, {}});
  EXPECT_FALSE(sim::run_chaos(no_servers, script).ok());
}

TEST(FailureInjection, ProfileLookupFailsClosed) {
  mec::SystemParams p;
  p.bandwidth = 123.0;  // canary
  EXPECT_FALSE(mec::find_profile("no_such_profile", p));
  EXPECT_DOUBLE_EQ(p.bandwidth, 123.0);  // untouched on failure
  EXPECT_TRUE(mec::find_profile("wifi_campus", p));
  EXPECT_TRUE(p.valid());
}

}  // namespace
}  // namespace mecoff
