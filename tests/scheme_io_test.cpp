// Tests for offloading-scheme serialization.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mec/scheme_io.hpp"

namespace mecoff::mec {
namespace {

OffloadingScheme sample_scheme() {
  OffloadingScheme s;
  s.placement = {{Placement::kLocal, Placement::kRemote, Placement::kRemote},
                 {Placement::kRemote, Placement::kLocal}};
  return s;
}

TEST(SchemeIo, RoundTrip) {
  const OffloadingScheme original = sample_scheme();
  const std::string text = to_scheme_text(original);
  const Result<OffloadingScheme> parsed = parse_scheme_text(text);
  ASSERT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().message);
  EXPECT_EQ(parsed.value().placement, original.placement);
}

TEST(SchemeIo, TextIsHumanReadable) {
  const std::string text = to_scheme_text(sample_scheme());
  EXPECT_NE(text.find("scheme users 2"), std::string::npos);
  EXPECT_NE(text.find("user 0 LRR"), std::string::npos);
  EXPECT_NE(text.find("user 1 RL"), std::string::npos);
}

TEST(SchemeIo, AcceptsCommentsAndAnyUserOrder) {
  const auto r = parse_scheme_text(
      "# saved by the CLI\nscheme users 2\nuser 1 RL\n\nuser 0 LRR\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().placement[0].size(), 3u);
  EXPECT_EQ(r.value().placement[1][0], Placement::kRemote);
}

TEST(SchemeIo, RejectsMalformedInput) {
  EXPECT_FALSE(parse_scheme_text("").ok());
  EXPECT_FALSE(parse_scheme_text("user 0 L\n").ok());            // no header
  EXPECT_FALSE(parse_scheme_text("scheme users 1\n").ok());      // missing user
  EXPECT_FALSE(
      parse_scheme_text("scheme users 1\nuser 0 LXR\n").ok());   // bad char
  EXPECT_FALSE(
      parse_scheme_text("scheme users 1\nuser 3 L\n").ok());     // range
  EXPECT_FALSE(parse_scheme_text(
                   "scheme users 1\nuser 0 L\nuser 0 R\n").ok()); // dup
  EXPECT_FALSE(parse_scheme_text(
                   "scheme users 1\nscheme users 1\nuser 0 L\n").ok());
}

TEST(SchemeIo, ErrorsCarryLineNumbers) {
  const auto r = parse_scheme_text("scheme users 1\nuser 0 LQ\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(SchemeIo, ParsedSchemeValidatesAgainstSystem) {
  UserApp app;
  app.graph = graph::path_graph(3);
  app.unoffloadable = {true, false, false};
  MecSystem system{SystemParams{}, {app}};
  const auto good = parse_scheme_text("scheme users 1\nuser 0 LRR\n");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().valid_for(system));
  // Offloading the pinned node 0 must be rejected by valid_for.
  const auto bad = parse_scheme_text("scheme users 1\nuser 0 RRR\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().valid_for(system));
}

}  // namespace
}  // namespace mecoff::mec
