// Unit tests for src/linalg: vector ops, dense/sparse matrices, the
// Laplacian (including the paper's Theorem 2 identity), and CG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {
namespace {

TEST(VectorOps, DotAndNorm) {
  const Vec x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  const Vec x{1.0};
  const Vec y{1.0, 2.0};
  EXPECT_THROW((void)dot(x, y), mecoff::PreconditionError);
}

TEST(VectorOps, Axpy) {
  const Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VectorOps, NormalizeMakesUnitAndReturnsNorm) {
  Vec x{0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(normalize(x), 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroThrows) {
  Vec x{0.0, 0.0};
  EXPECT_THROW(normalize(x), mecoff::PreconditionError);
}

TEST(VectorOps, DeflateRemovesComponent) {
  Vec d{1.0, 0.0};
  Vec x{5.0, 7.0};
  deflate(x, d);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
}

TEST(VectorOps, ConstantUnitIsUnitNorm) {
  const Vec c = constant_unit(16);
  EXPECT_NEAR(norm2(c), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(c[0], c[15]);
}

TEST(DenseMatrix, MultiplyVector) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 2) = 4;
  const Vec y = m.multiply(Vec{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(DenseMatrix, MultiplyMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const DenseMatrix c = a.multiply(a);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 22.0);
}

TEST(DenseMatrix, TransposeAndSymmetry) {
  DenseMatrix m(2, 2);
  m(0, 1) = 5;
  EXPECT_DOUBLE_EQ(m.symmetry_error(), 5.0);
  const DenseMatrix t = m.transposed();
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 0.0);
}

TEST(SparseMatrix, FromTripletsMergesDuplicates) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, 2, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(99);
  const std::size_t n = 24;
  std::vector<Triplet> triplets;
  DenseMatrix dense(n, n);
  for (int k = 0; k < 120; ++k) {
    const std::size_t r = rng.index(n);
    const std::size_t c = rng.index(n);
    const double v = rng.uniform(-2.0, 2.0);
    triplets.push_back({r, c, v});
    dense(r, c) += v;
  }
  const SparseMatrix sparse = SparseMatrix::from_triplets(n, n, triplets);
  Vec x(n);
  for (double& e : x) e = rng.uniform(-1.0, 1.0);
  const Vec ys = sparse.multiply(x);
  const Vec yd = dense.multiply(x);
  EXPECT_LT(max_abs_diff(ys, yd), 1e-12);
}

TEST(SparseMatrix, MultiplyRowsSubrange) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}});
  Vec y(3, -1.0);
  m.multiply_rows(Vec{1.0, 1.0, 1.0}, y, 1, 3);
  EXPECT_DOUBLE_EQ(y[0], -1.0);  // untouched
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(SparseMatrix, GershgorinBoundsSpectralRadius) {
  // Laplacian of K4 (unit weights): λ_max = 4; bound = 2·deg = 6.
  const SparseMatrix lap = laplacian(graph::complete_graph(4));
  EXPECT_GE(lap.gershgorin_bound(), 4.0);
  EXPECT_DOUBLE_EQ(lap.gershgorin_bound(), 6.0);
}

TEST(Laplacian, RowsSumToZero) {
  const SparseMatrix lap =
      laplacian(graph::barbell_graph(4, 2.0, 7.0));
  for (std::size_t r = 0; r < lap.rows(); ++r)
    EXPECT_NEAR(lap.row_sum(r), 0.0, 1e-12);
}

TEST(Laplacian, MatchesDenseVersion) {
  const graph::WeightedGraph g = graph::cycle_graph(6, 1.0, 2.5);
  const SparseMatrix sparse = laplacian(g);
  const DenseMatrix dense = dense_laplacian(g);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_NEAR(sparse.at(r, c), dense(r, c), 1e-12);
  EXPECT_DOUBLE_EQ(dense.symmetry_error(), 0.0);
}

TEST(Laplacian, AnnihilatesConstantVector) {
  const graph::WeightedGraph g = graph::grid_graph(3, 3);
  const SparseMatrix lap = laplacian(g);
  const Vec ones(9, 1.0);
  const Vec y = lap.multiply(ones);
  for (const double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

// Theorem 2 of the paper: with q ∈ {+1,−1}ⁿ and d1=1, d2=−1,
// CUT(G1, G2) = qᵀ L q / (d1−d2)² = qᵀ L q / 4.
TEST(Laplacian, Theorem2CutIdentity) {
  Rng rng(7);
  graph::NetgenParams p;
  p.nodes = 60;
  p.edges = 220;
  p.seed = 42;
  const graph::WeightedGraph g = graph::netgen_style(p);
  for (int trial = 0; trial < 10; ++trial) {
    Vec q(g.num_nodes());
    std::vector<std::uint8_t> side(g.num_nodes());
    for (std::size_t i = 0; i < q.size(); ++i) {
      side[i] = rng.bernoulli(0.5) ? 1 : 0;
      q[i] = side[i] == 1 ? 1.0 : -1.0;
    }
    const double qlq = laplacian_quadratic_form(g, q);
    EXPECT_NEAR(qlq / 4.0, graph::cut_weight(g, side),
                1e-9 * (1.0 + qlq));
  }
}

TEST(Laplacian, QuadraticFormMatchesExplicitMultiply) {
  const graph::WeightedGraph g = graph::barbell_graph(5, 1.5, 4.0);
  const SparseMatrix lap = laplacian(g);
  Rng rng(3);
  Vec q(g.num_nodes());
  for (double& v : q) v = rng.uniform(-2.0, 2.0);
  const Vec lq = lap.multiply(q);
  EXPECT_NEAR(laplacian_quadratic_form(g, q), dot(q, lq), 1e-9);
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  // Diagonal SPD system.
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 8.0}});
  const LinearOperator op = make_operator(m);
  const CgResult r = conjugate_gradient(op, Vec{2.0, 4.0, 8.0}, {});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
  EXPECT_NEAR(r.x[2], 1.0, 1e-8);
}

TEST(ConjugateGradient, SolvesSingularLaplacianWithDeflation) {
  const graph::WeightedGraph g = graph::cycle_graph(8);
  const SparseMatrix lap = laplacian(g);
  const LinearOperator op = make_operator(lap);

  // Right-hand side orthogonal to the null space (constants).
  Vec b(8, 0.0);
  b[0] = 1.0;
  b[4] = -1.0;

  CgOptions opts;
  opts.deflate = {constant_unit(8)};
  const CgResult r = conjugate_gradient(op, b, opts);
  ASSERT_TRUE(r.converged);
  // Check L x = b (up to the null-space component).
  const Vec lx = lap.multiply(r.x);
  EXPECT_LT(max_abs_diff(lx, b), 1e-7);
}

}  // namespace
}  // namespace mecoff::linalg
