// Differential tests against a brute-force min-cut oracle
// (ctest label: differential).
//
// Every connected weighted graph on n <= 8 nodes that the enumerated
// seed grid produces is cut three ways:
//
//   1. exhaustively — all 2^(n-1) - 1 bipartitions with node 0 pinned
//      to side 0 (W*, the true minimum cut weight),
//   2. by Stoer–Wagner (must EQUAL W*: it is an exact algorithm), and
//   3. by the spectral sweep bipartitioner (must land within the
//      paper's spectral approximation guarantee of W*).
//
// The spectral guarantee is checked in its sharp form. With λ₂ the
// algebraic connectivity (computed exactly here by the cyclic-Jacobi
// oracle on the dense Laplacian) and Δ the maximum weighted degree,
// Mohar's isoperimetric inequality certifies that the best sweep cut
// of the Fiedler ordering has weight
//
//     W_sweep ≤ sqrt(λ₂ (2Δ − λ₂)) · n / 2,
//
// and SplitPolicy::kSweep returns the cut-weight minimum over all
// thresholds, so it inherits the bound. The matching lower bound
// W* ≥ λ₂ |S||S̄| / n (Fiedler) pins the oracle's λ₂ from the other
// side, so a wrong eigenvalue cannot silently satisfy both.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "graph/components.hpp"
#include "graph/partition.hpp"
#include "graph/weighted_graph.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/laplacian.hpp"
#include "mincut/stoer_wagner.hpp"
#include "spectral/bipartitioner.hpp"

namespace mecoff {
namespace {

struct SmallGraphCase {
  std::size_t nodes;
  std::uint64_t seed;
  double extra_edge_probability;  ///< density on top of the spanning tree
};

/// The enumerated grid: every node count 2..8 crossed with ten seeds at
/// two densities (sparse trees-plus-a-little and near-complete).
std::vector<SmallGraphCase> small_graph_cases() {
  std::vector<SmallGraphCase> cases;
  for (std::size_t n = 2; n <= 8; ++n)
    for (std::uint64_t seed = 0; seed < 10; ++seed)
      for (const double p : {0.25, 0.9})
        cases.push_back(SmallGraphCase{n, seed * 7919 + n, p});
  return cases;
}

/// Connected by construction: a random spanning tree (node i attaches
/// to a random earlier node) plus Bernoulli extra edges. Weights are
/// uniform in [0.5, 3.0] so no cut is degenerate.
graph::WeightedGraph make_connected_graph(const SmallGraphCase& c) {
  Rng rng(c.seed ^ 0xd1ffe4e7);
  graph::GraphBuilder builder;
  for (std::size_t v = 0; v < c.nodes; ++v) builder.add_node(1.0);
  for (std::size_t v = 1; v < c.nodes; ++v) {
    const auto parent = static_cast<graph::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    builder.add_edge(static_cast<graph::NodeId>(v), parent,
                     rng.uniform(0.5, 3.0));
  }
  for (std::size_t u = 0; u < c.nodes; ++u)
    for (std::size_t v = u + 1; v < c.nodes; ++v)
      if (rng.bernoulli(c.extra_edge_probability))
        builder.add_edge(static_cast<graph::NodeId>(u),
                         static_cast<graph::NodeId>(v),
                         rng.uniform(0.5, 3.0));
  return builder.build();
}

struct BruteForceCut {
  double weight = 0.0;
  std::vector<std::uint8_t> side;
};

/// Exact minimum cut: node 0 is pinned to side 0 (bipartitions are
/// unordered), every non-empty mask over nodes 1..n-1 is a candidate.
BruteForceCut brute_force_min_cut(const graph::WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  BruteForceCut best;
  std::vector<std::uint8_t> side(n, 0);
  bool have_best = false;
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    for (std::size_t v = 1; v < n; ++v)
      side[v] = (mask >> (v - 1)) & 1u;
    const double w = graph::cut_weight(g, side);
    if (!have_best || w < best.weight) {
      best.weight = w;
      best.side = side;
      have_best = true;
    }
  }
  return best;
}

/// Exact λ₂ from the dense Laplacian via the cyclic-Jacobi oracle.
double exact_lambda2(const graph::WeightedGraph& g) {
  const linalg::JacobiResult eig =
      linalg::jacobi_eigen(linalg::dense_laplacian(g));
  EXPECT_TRUE(eig.converged);
  EXPECT_GE(eig.values.size(), 2u);
  return eig.values[1];
}

double max_weighted_degree(const graph::WeightedGraph& g) {
  double max_degree = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    max_degree = std::max(max_degree, g.weighted_degree(v));
  return max_degree;
}

class SmallGraphDifferential
    : public ::testing::TestWithParam<SmallGraphCase> {};

TEST_P(SmallGraphDifferential, StoerWagnerEqualsBruteForce) {
  const graph::WeightedGraph g = make_connected_graph(GetParam());
  const BruteForceCut oracle = brute_force_min_cut(g);
  const graph::Bipartition sw = mincut::stoer_wagner(g);
  EXPECT_NEAR(sw.cut_weight, oracle.weight, 1e-9 * (1.0 + oracle.weight));
  // The reported side vector must actually realize the reported weight.
  EXPECT_NEAR(graph::cut_weight(g, sw.side), sw.cut_weight,
              1e-9 * (1.0 + sw.cut_weight));
}

TEST_P(SmallGraphDifferential, SpectralSweepWithinPaperBoundOfBruteForce) {
  const graph::WeightedGraph g = make_connected_graph(GetParam());
  ASSERT_EQ(graph::connected_components(g).count, 1u);
  const std::size_t n = g.num_nodes();

  const BruteForceCut oracle = brute_force_min_cut(g);
  const double lambda2 = exact_lambda2(g);
  ASSERT_GT(lambda2, 0.0);  // connected ⇒ positive algebraic connectivity

  spectral::SpectralBipartitioner bipartitioner;
  const graph::Bipartition spec = bipartitioner.bipartition(g);
  ASSERT_TRUE(bipartitioner.last_converged());
  // λ₂ as the iterative solver saw it agrees with the Jacobi oracle.
  EXPECT_NEAR(bipartitioner.last_fiedler_value(), lambda2,
              1e-6 * (1.0 + lambda2));

  // A minimum is a minimum: the spectral cut can never beat the oracle.
  EXPECT_GE(spec.cut_weight, oracle.weight - 1e-9 * (1.0 + oracle.weight));

  if (n == 2) {
    // Exactly one bipartition exists, so spectral IS the optimum.
    EXPECT_NEAR(spec.cut_weight, oracle.weight,
                1e-9 * (1.0 + oracle.weight));
  } else if (n >= 4) {
    // Mohar sweep-cut upper bound (the paper's approximation
    // guarantee). Mohar's theorem excludes K₁, K₂ and K₃ — on K₃ the
    // bound is genuinely false — so it is asserted from n = 4 up; the
    // n = 3 cases are covered by the oracle sandwich above/below.
    const double delta = max_weighted_degree(g);
    const double slack = 2.0 * delta - lambda2;  // ≥ 0 by Gershgorin
    EXPECT_GE(slack, -1e-9 * (1.0 + delta));
    const double mohar = std::sqrt(std::max(0.0, lambda2 * slack)) *
                         static_cast<double>(n) / 2.0;
    EXPECT_LE(spec.cut_weight, mohar * (1.0 + 1e-9) + 1e-9)
        << "n=" << n << " λ₂=" << lambda2 << " Δ=" << delta;
  }

  // Fiedler lower bound on the optimum, with the optimum's own sizes.
  std::size_t side1 = 0;
  for (const std::uint8_t s : oracle.side) side1 += s;
  const double fiedler_lower = lambda2 *
                               static_cast<double>(side1) *
                               static_cast<double>(n - side1) /
                               static_cast<double>(n);
  EXPECT_GE(oracle.weight, fiedler_lower - 1e-9 * (1.0 + fiedler_lower));
}

INSTANTIATE_TEST_SUITE_P(
    AllSmallGraphs, SmallGraphDifferential,
    ::testing::ValuesIn(small_graph_cases()),
    [](const ::testing::TestParamInfo<SmallGraphCase>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_s" +
             std::to_string(param_info.param.seed) + "_" +
             (param_info.param.extra_edge_probability > 0.5 ? "dense"
                                                            : "sparse");
    });

}  // namespace
}  // namespace mecoff
