// Unit tests for the max-flow/min-cut baseline: Edmonds–Karp, Dinic,
// Stoer–Wagner, and the terminal-selection bipartitioner.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "mincut/bipartitioner.hpp"
#include "mincut/dinic.hpp"
#include "mincut/edmonds_karp.hpp"
#include "mincut/stoer_wagner.hpp"

namespace mecoff::mincut {
namespace {

using graph::Bipartition;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WeightedGraph;

/// The classic CLRS-style directed flow example, max flow 23.
FlowNetwork clrs_network() {
  FlowNetwork net(6);
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  return net;
}

TEST(EdmondsKarp, ClassicExample) {
  FlowNetwork net = clrs_network();
  const MaxFlowResult r = edmonds_karp(net, 0, 5);
  EXPECT_NEAR(r.flow_value, 23.0, 1e-9);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[5]);
}

TEST(Dinic, MatchesEdmondsKarpOnClassicExample) {
  FlowNetwork net = clrs_network();
  const MaxFlowResult r = dinic(net, 0, 5);
  EXPECT_NEAR(r.flow_value, 23.0, 1e-9);
}

TEST(MaxFlow, SingleEdgeNetwork) {
  FlowNetwork net(2);
  net.add_arc(0, 1, 5.5);
  const MaxFlowResult r = edmonds_karp(net, 0, 1);
  EXPECT_NEAR(r.flow_value, 5.5, 1e-12);
}

TEST(MaxFlow, DisconnectedTerminalsZeroFlow) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(2, 3, 3);
  const MaxFlowResult r = edmonds_karp(net, 0, 3);
  EXPECT_DOUBLE_EQ(r.flow_value, 0.0);
  EXPECT_EQ(r.augmenting_paths, 0u);
}

TEST(MaxFlow, ParallelPathsSum) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(1, 3, 3);
  net.add_arc(0, 2, 4);
  net.add_arc(2, 3, 4);
  FlowNetwork net2(4);
  net2.add_arc(0, 1, 3);
  net2.add_arc(1, 3, 3);
  net2.add_arc(0, 2, 4);
  net2.add_arc(2, 3, 4);
  EXPECT_NEAR(edmonds_karp(net, 0, 3).flow_value, 7.0, 1e-12);
  EXPECT_NEAR(dinic(net2, 0, 3).flow_value, 7.0, 1e-12);
}

TEST(MaxFlow, DualityOnUndirectedGraphs) {
  // Max flow value equals the weight of the extracted cut.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    graph::NetgenParams p;
    p.nodes = 30;
    p.edges = 110;
    p.components = 1;
    p.seed = 100 + static_cast<std::uint64_t>(trial);
    const WeightedGraph g = graph::netgen_style(p);
    const NodeId s = static_cast<NodeId>(rng.index(g.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.index(g.num_nodes()));
    if (t == s) t = (s + 1) % static_cast<NodeId>(g.num_nodes());

    FlowNetwork net = FlowNetwork::from_graph(g);
    const MaxFlowResult flow = edmonds_karp(net, s, t);
    const Bipartition cut = min_st_cut_edmonds_karp(g, s, t);
    EXPECT_NEAR(flow.flow_value, cut.cut_weight, 1e-8);
    EXPECT_EQ(cut.side[s], 0);
    EXPECT_EQ(cut.side[t], 1);
  }
}

TEST(MaxFlow, EkAndDinicAgreeOnRandomGraphs) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    graph::NetgenParams p;
    p.nodes = 40;
    p.edges = 150;
    p.components = 1;
    p.seed = 200 + static_cast<std::uint64_t>(trial);
    const WeightedGraph g = graph::netgen_style(p);
    const NodeId s = 0;
    const NodeId t = static_cast<NodeId>(g.num_nodes() - 1);
    FlowNetwork a = FlowNetwork::from_graph(g);
    FlowNetwork b = FlowNetwork::from_graph(g);
    EXPECT_NEAR(edmonds_karp(a, s, t).flow_value, dinic(b, s, t).flow_value,
                1e-8);
  }
}

TEST(MaxFlow, InvalidTerminalsThrow) {
  FlowNetwork net(3);
  EXPECT_THROW(edmonds_karp(net, 0, 0), mecoff::PreconditionError);
  EXPECT_THROW(dinic(net, 0, 9), mecoff::PreconditionError);
}

TEST(StoerWagner, FindsBarbellBridge) {
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 10.0);
  const Bipartition cut = stoer_wagner(g);
  EXPECT_DOUBLE_EQ(cut.cut_weight, 1.0);
  EXPECT_EQ(cut.size(0), 5u);
}

TEST(StoerWagner, PathGraphCutsLightestEdge) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 4.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 3, 0.7);
  b.add_edge(3, 4, 5.0);
  const Bipartition cut = stoer_wagner(b.build());
  EXPECT_NEAR(cut.cut_weight, 0.7, 1e-12);
}

TEST(StoerWagner, CompleteGraphCutIsolatesOneNode) {
  // Global min cut of K_n (unit weights) = n−1.
  const Bipartition cut = stoer_wagner(graph::complete_graph(6));
  EXPECT_DOUBLE_EQ(cut.cut_weight, 5.0);
  EXPECT_TRUE(cut.size(0) == 1 || cut.size(1) == 1);
}

TEST(StoerWagner, MatchesAllTerminalMaxFlow) {
  // Global min cut = min over t of maxflow(s, t) for any fixed s.
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL, 34ULL}) {
    graph::NetgenParams p;
    p.nodes = 25;
    p.edges = 90;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    const Bipartition sw = stoer_wagner(g);
    MaxFlowCutOptions opts;
    opts.strategy = TerminalStrategy::kAllTerminalsFromS;
    MaxFlowBipartitioner flow_cutter(opts);
    const Bipartition mf = flow_cutter.bipartition(g);
    EXPECT_NEAR(sw.cut_weight, mf.cut_weight, 1e-8);
  }
}

TEST(StoerWagner, DisconnectedGraphZeroCut) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(2, 3, 2.0);
  const Bipartition cut = stoer_wagner(b.build());
  EXPECT_DOUBLE_EQ(cut.cut_weight, 0.0);
}

TEST(StoerWagner, TinyGraphs) {
  EXPECT_DOUBLE_EQ(stoer_wagner(WeightedGraph{}).cut_weight, 0.0);
  EXPECT_DOUBLE_EQ(stoer_wagner(graph::path_graph(1)).cut_weight, 0.0);
  const Bipartition two = stoer_wagner(graph::path_graph(2, 1.0, 3.5));
  EXPECT_DOUBLE_EQ(two.cut_weight, 3.5);
}

TEST(Bipartitioner, AllStrategiesReturnValidCuts) {
  graph::NetgenParams p;
  p.nodes = 35;
  p.edges = 120;
  p.components = 1;
  p.seed = 55;
  const WeightedGraph g = graph::netgen_style(p);
  for (const TerminalStrategy strategy :
       {TerminalStrategy::kMaxDegreeFarthest, TerminalStrategy::kBestOfK,
        TerminalStrategy::kAllTerminalsFromS}) {
    MaxFlowCutOptions opts;
    opts.strategy = strategy;
    MaxFlowBipartitioner cutter(opts);
    const Bipartition cut = cutter.bipartition(g);
    EXPECT_TRUE(graph::is_valid_partition(g, cut.side));
    EXPECT_NEAR(cut.cut_weight, graph::cut_weight(g, cut.side), 1e-9);
    EXPECT_GE(cut.size(0), 1u);
    EXPECT_GE(cut.size(1), 1u);
  }
}

TEST(Bipartitioner, BestOfKImprovesWithMorePairs) {
  graph::NetgenParams p;
  p.nodes = 50;
  p.edges = 180;
  p.components = 1;
  p.seed = 77;
  const WeightedGraph g = graph::netgen_style(p);
  MaxFlowCutOptions few;
  few.num_pairs = 1;
  MaxFlowCutOptions many;
  many.num_pairs = 16;
  const double cut_few = MaxFlowBipartitioner(few).bipartition(g).cut_weight;
  const double cut_many =
      MaxFlowBipartitioner(many).bipartition(g).cut_weight;
  EXPECT_LE(cut_many, cut_few + 1e-9);
}

TEST(Bipartitioner, DegenerateInputs) {
  MaxFlowBipartitioner cutter;
  EXPECT_TRUE(cutter.bipartition(WeightedGraph{}).side.empty());
  const Bipartition one = cutter.bipartition(graph::path_graph(1));
  EXPECT_EQ(one.side.size(), 1u);
  EXPECT_DOUBLE_EQ(one.cut_weight, 0.0);
}

TEST(Bipartitioner, Name) {
  EXPECT_EQ(MaxFlowBipartitioner{}.name(), "maxflow");
}

// ---- brute-force differential (small graphs) ------------------------------
// The exhaustive sweep lives in tests/differential_test.cpp (label
// `differential`); this tier-1 version pins the exact algorithms to the
// oracle on a handful of graphs so a mincut regression fails fast even
// when only the default ctest set runs.

double brute_force_min_cut_weight(const WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  double best = 0.0;
  bool have_best = false;
  std::vector<std::uint8_t> side(n, 0);
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    for (std::size_t v = 1; v < n; ++v)
      side[v] = (mask >> (v - 1)) & 1u;
    const double w = graph::cut_weight(g, side);
    if (!have_best || w < best) {
      best = w;
      have_best = true;
    }
  }
  return best;
}

TEST(StoerWagner, EqualsBruteForceOnSmallRandomGraphs) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL}) {
    graph::NetgenParams p;
    p.nodes = 8;
    p.edges = 16;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    const double oracle = brute_force_min_cut_weight(g);
    const Bipartition sw = stoer_wagner(g);
    EXPECT_NEAR(sw.cut_weight, oracle, 1e-9 * (1.0 + oracle))
        << "seed " << seed;
  }
}

TEST(MaxFlowBipartitionerDifferential, NeverBeatsBruteForce) {
  // The terminal-selection heuristic is not exact, but it must never
  // report a cut below the true minimum (that would mean a bogus
  // cut_weight), and with kBestOfK it should land on the optimum for
  // graphs this small most of the time — assert within 2x.
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    graph::NetgenParams p;
    p.nodes = 7;
    p.edges = 14;
    p.components = 1;
    p.seed = seed;
    const WeightedGraph g = graph::netgen_style(p);
    const double oracle = brute_force_min_cut_weight(g);
    MaxFlowCutOptions opts;
    opts.strategy = TerminalStrategy::kBestOfK;
    opts.num_pairs = 16;
    const Bipartition cut = MaxFlowBipartitioner(opts).bipartition(g);
    EXPECT_GE(cut.cut_weight, oracle - 1e-9 * (1.0 + oracle));
    EXPECT_LE(cut.cut_weight, 2.0 * oracle + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mecoff::mincut
