// Fuzz harness: serve::Fingerprint canonicalization (differential).
//
// The scheme cache keys on fingerprint_request(); a canonicalization
// bug either splits identical problems across cache entries (missed
// reuse) or — much worse — collides distinct problems onto one entry
// and serves a wrong placement. canonical_request_text() renders the
// exact scalar stream the hash consumes, so the two must agree:
//
//       fingerprint equal  <=>  canonical text equal
//
// The harness derives one request (A) from the fuzz input, then a
// second (B) through a mode-selected transformation that is either a
// documented no-op for the canonical form (edge insertion order, edge
// direction, empty vs explicit all-false pin mask, -0.0 vs +0.0) or a
// guaranteed semantic change (a weight or parameter bump). It asserts
// the text equality the mode predicts, that the fingerprints track the
// text on both sides, and that hashing is deterministic.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "mec/model.hpp"
#include "serve/fingerprint.hpp"
#include "support/fuzz_input.hpp"

namespace {

using mecoff::fuzz::InputReader;

struct Spec {
  std::vector<double> node_weights;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // u < v, unique
  std::vector<double> edge_weights;
  std::vector<bool> unoffloadable;          // may be empty
  std::vector<std::uint32_t> components;    // may be empty
  mecoff::mec::SystemParams params;
};

mecoff::mec::UserApp build(const Spec& spec, bool reverse_edges,
                           bool flip_direction) {
  mecoff::graph::GraphBuilder builder;
  for (double w : spec.node_weights) builder.add_node(w);
  const std::size_t m = spec.edges.size();
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t at = reverse_edges ? m - 1 - i : i;
    auto [u, v] = spec.edges[at];
    if (flip_direction) std::swap(u, v);
    builder.add_edge(u, v, spec.edge_weights[at]);
  }
  mecoff::mec::UserApp user;
  user.graph = builder.build();
  user.unoffloadable = spec.unoffloadable;
  user.components = spec.components;
  return user;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  InputReader in(data, size);

  Spec spec;
  const std::size_t n = 1 + in.take_index(8);
  for (std::size_t i = 0; i < n; ++i)
    spec.node_weights.push_back(in.take_weight());

  // Unique undirected edges (u < v): duplicate endpoint pairs are
  // excluded so the canonical sort order is independent of insertion
  // order by construction — the invariance modes below rely on that.
  const std::size_t want_edges = in.take_index(2 * n);
  for (std::size_t i = 0; i < want_edges; ++i) {
    std::size_t u = in.take_index(n);
    std::size_t v = in.take_index(n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    bool dup = false;
    for (const auto& e : spec.edges) dup = dup || e == std::make_pair(u, v);
    if (dup) continue;
    spec.edges.emplace_back(u, v);
    spec.edge_weights.push_back(in.take_weight());
  }

  const std::uint8_t pin_mode = in.take_u8() % 3;
  if (pin_mode > 0)  // 0: empty mask (all offloadable by convention)
    for (std::size_t i = 0; i < n; ++i)
      spec.unoffloadable.push_back(pin_mode == 2 && (in.take_u8() & 1));
  if (in.take_u8() & 1)
    for (std::size_t i = 0; i < n; ++i)
      spec.components.push_back(static_cast<std::uint32_t>(in.take_index(4)));
  spec.params.bandwidth = 1.0 + in.take_weight();
  spec.params.transmit_power = 1.0 + in.take_weight();

  const mecoff::mec::UserApp a = build(spec, false, false);
  const mecoff::serve::Fingerprint fp_a =
      mecoff::serve::fingerprint_request(a, spec.params);
  const std::string text_a =
      mecoff::serve::canonical_request_text(a, spec.params);

  FUZZ_ASSERT(mecoff::serve::fingerprint_request(a, spec.params) == fp_a,
              "fingerprint_request is nondeterministic");

  Spec spec_b = spec;
  bool expect_equal = true;
  switch (in.take_u8() % 6) {
    case 0:  // identical rebuild
      break;
    case 1:  // edge insertion order + direction must not matter
      break;  // handled via build() flags below
    case 2: {  // empty mask == explicit all-false mask
      bool any_pinned = false;
      for (bool pin : spec.unoffloadable) any_pinned = any_pinned || pin;
      if (!any_pinned) spec_b.unoffloadable.assign(n, false);
      break;
    }
    case 3:  // -0.0 normalizes to +0.0
      if (!spec_b.node_weights.empty() && spec_b.node_weights[0] == 0.0) {
        spec_b.node_weights[0] = -0.0;
      }
      break;
    case 4:  // a node weight bump is a different problem
      spec_b.node_weights[in.take_index(n)] += 1.0;
      expect_equal = false;
      break;
    default:  // so is a channel-parameter change
      spec_b.params.bandwidth += 1.0;
      expect_equal = false;
      break;
  }
  const bool scramble = in.take_u8() & 1;  // legal on every mode
  const mecoff::mec::UserApp b = build(spec_b, scramble, scramble);
  const mecoff::serve::Fingerprint fp_b =
      mecoff::serve::fingerprint_request(b, spec_b.params);
  const std::string text_b =
      mecoff::serve::canonical_request_text(b, spec_b.params);

  FUZZ_ASSERT((text_a == text_b) == expect_equal,
              expect_equal
                  ? "documented no-op transformation changed the canonical "
                    "text"
                  : "semantic change left the canonical text untouched");
  FUZZ_ASSERT((fp_a == fp_b) == (text_a == text_b),
              "fingerprint equality diverged from canonical-text equality");
  return 0;
}
