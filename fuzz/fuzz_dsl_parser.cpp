// Fuzz harness: /solve application-DSL parser (appmodel/dsl_parser).
//
// The DSL is the service's untrusted wire format — every /solve POST
// body goes through parse_app_dsl before anything else. Contracts:
//
//   1. Totality: parse_app_dsl never crashes, throws, or trips a
//      sanitizer on ANY byte string; malformed input yields an error
//      Result.
//   2. Canonical fixed point: if parsing succeeds, serializing with
//      to_app_dsl and reparsing must succeed, and re-serializing must
//      reproduce the SAME bytes. (First-serialization output may
//      legally differ from the raw input — comments, token spacing and
//      float formatting are normalized — but the canonical form must
//      be stable, or the scheme cache would miss on its own output.)
//   3. Model sanity: accepted applications contain only finite,
//      non-negative compute/data values and in-range exchange
//      endpoints — the invariants the fingerprint and solver layers
//      assume without rechecking.
#include <cmath>
#include <cstdint>
#include <string>

#include "appmodel/application.hpp"
#include "appmodel/dsl_parser.hpp"
#include "support/fuzz_input.hpp"

using mecoff::appmodel::Application;
using mecoff::appmodel::parse_app_dsl;
using mecoff::appmodel::to_app_dsl;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  mecoff::Result<Application> parsed = parse_app_dsl(input);
  if (!parsed.ok()) return 0;  // rejection is a valid outcome
  const Application& app = parsed.value();

  FUZZ_ASSERT(app.num_functions() > 0,
              "parser accepted an application with no functions");
  for (const mecoff::appmodel::FunctionInfo& f : app.functions()) {
    FUZZ_ASSERT(std::isfinite(f.computation) && f.computation >= 0,
                "accepted non-finite or negative compute cost");
    FUZZ_ASSERT(!f.name.empty(), "accepted an unnamed function");
  }
  for (const mecoff::appmodel::DataExchange& x : app.exchanges()) {
    FUZZ_ASSERT(std::isfinite(x.amount) && x.amount >= 0,
                "accepted non-finite or negative data amount");
    FUZZ_ASSERT(x.from < app.num_functions() && x.to < app.num_functions(),
                "exchange endpoint out of range");
    FUZZ_ASSERT(x.from != x.to, "accepted a self-call exchange");
  }

  const std::string canonical = to_app_dsl(app);
  mecoff::Result<Application> reparsed = parse_app_dsl(canonical);
  FUZZ_ASSERT(reparsed.ok(),
              ("canonical form failed to reparse: " +
               (reparsed.ok() ? std::string() : reparsed.error().message) +
               "\n--- canonical ---\n" + canonical)
                  .c_str());
  FUZZ_ASSERT(to_app_dsl(reparsed.value()) == canonical,
              ("canonical form is not a fixed point:\n--- first ---\n" +
               canonical + "--- second ---\n" + to_app_dsl(reparsed.value()))
                  .c_str());
  return 0;
}
