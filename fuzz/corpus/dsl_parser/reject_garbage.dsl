garbage directive
