app nav
function capture compute=2 unoffloadable
function detect compute=40
function plan compute=12
call capture detect data=8.5
call detect plan data=1.25
