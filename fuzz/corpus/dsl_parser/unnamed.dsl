function only compute=0
