app f
function a compute=0.000125
function b compute=1e6
call a b data=3.14159
