# two declared components and an anonymous reset
app media
component decode
function demux compute=1
function decode compute=30
component -
function render compute=5 unoffloadable
call demux decode data=12
call decode render data=20
