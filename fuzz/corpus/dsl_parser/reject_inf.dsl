app x
function a compute=inf
