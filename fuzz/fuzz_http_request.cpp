// Fuzz harness: HttpServer request-head parsing (obs/serve/http_parser).
//
// The diagnostics port reads raw sockets; parse_request_head is the
// first code that touches attacker-controlled bytes. Contracts:
//
//   1. Totality: never crashes or trips a sanitizer on any byte
//      string; every complete header block maps to exactly one
//      HeadStatus (the 400/405/413 table in http_parser.hpp).
//   2. Determinism: parsing the same buffer twice yields the same
//      status and the same parsed head — no hidden state.
//   3. kOk invariants the connection loop relies on without
//      rechecking: method is GET/HEAD/POST; declared content_length
//      never exceeds kMaxHttpBody (the read loop sizes a buffer from
//      it); non-POST requests carry content_length == 0; the path is
//      non-empty and query-stripped.
//   4. parse_content_length tri-state: kMalformed and kAbsent are
//      distinct — a malformed declared length must surface as
//      kBadContentLength (-> 400), never as "no body" (the regression
//      this PR's bug fix pinned down).
#include <cstdint>
#include <string>

#include "obs/serve/http_parser.hpp"
#include "support/fuzz_input.hpp"

namespace serve = mecoff::obs::serve;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string buffer(reinterpret_cast<const char*>(data), size);

  // The connection loop only calls parse_request_head once it has
  // located the "\r\n\r\n" terminator; mirror that contract here and
  // synthesize one when the input lacks it (so every fuzz input
  // reaches the parser instead of the accumulation path).
  std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    header_end = buffer.size();
    buffer += "\r\n\r\n";
  }

  serve::ParsedHead head1;
  const serve::HeadStatus status1 =
      serve::parse_request_head(buffer, header_end, head1);
  serve::ParsedHead head2;
  const serve::HeadStatus status2 =
      serve::parse_request_head(buffer, header_end, head2);

  FUZZ_ASSERT(status1 == status2, "parse_request_head is nondeterministic");
  if (status1 == serve::HeadStatus::kOk) {
    FUZZ_ASSERT(head1.request.method == head2.request.method &&
                    head1.request.path == head2.request.path &&
                    head1.request.query == head2.request.query &&
                    head1.request.headers == head2.request.headers &&
                    head1.content_length == head2.content_length,
                "parse_request_head produced two different heads");
    FUZZ_ASSERT(head1.request.method == "GET" ||
                    head1.request.method == "HEAD" ||
                    head1.request.method == "POST",
                "kOk with a method outside the GET/HEAD/POST whitelist");
    FUZZ_ASSERT(head1.content_length <= serve::kMaxHttpBody,
                "kOk with a declared length over kMaxHttpBody");
    FUZZ_ASSERT(head1.request.method == "POST" || head1.content_length == 0,
                "non-POST request with a nonzero declared body length");
    FUZZ_ASSERT(!head1.request.path.empty(), "kOk with an empty path");
    FUZZ_ASSERT(head1.request.path.find('?') == std::string::npos,
                "query string not stripped from path");
    FUZZ_ASSERT(head1.request.body.empty(),
                "head parsing must not populate the body");
  }

  // Exercise the Content-Length tri-state directly on the header
  // block, independent of the request line.
  const std::size_t line_end = buffer.find("\r\n");
  if (line_end != std::string::npos && line_end + 2 <= header_end) {
    std::size_t declared = 0;
    const serve::ContentLengthStatus cl = serve::parse_content_length(
        buffer, line_end + 2, header_end, declared);
    if (cl == serve::ContentLengthStatus::kOk)
      // The clamp stops accumulating once the value exceeds the cap,
      // so an oversized declaration stays strictly above kMaxHttpBody
      // (the caller's > test still fires) without ever overflowing:
      // the value is bounded by one final 10x+9 step past the cap.
      FUZZ_ASSERT(declared <= 10 * serve::kMaxHttpBody + 9,
                  "content-length clamp overflowed its bound");
  }
  return 0;
}
