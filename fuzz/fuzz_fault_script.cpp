// Fuzz harness: sim::FaultScript text round-trip (sim/fault_script).
//
// Fault scripts are replay artifacts: a failure run is reproduced by
// feeding the exact to_text() output back through parse(). Contracts:
//
//   1. Totality: parse never crashes or throws on any byte string —
//      garbage yields an error Result (the add() preconditions that
//      throw for programmatic misuse must never be reachable from
//      text).
//   2. Round trip: if parse succeeds, to_text() must reparse, and the
//      second to_text() must be byte-identical — otherwise a replay
//      log drifts every time it is saved and reloaded.
//   3. Event sanity: accepted events have finite non-negative times,
//      and degrade severities inside (0, 1); to_text() is in replay
//      order (times non-decreasing).
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_script.hpp"
#include "support/fuzz_input.hpp"

using mecoff::sim::FaultEvent;
using mecoff::sim::FaultKind;
using mecoff::sim::FaultScript;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  mecoff::Result<FaultScript> parsed = FaultScript::parse(input);
  if (!parsed.ok()) return 0;
  const FaultScript& script = parsed.value();

  const std::vector<FaultEvent> ordered = script.ordered();
  double last_time = 0.0;
  for (const FaultEvent& event : ordered) {
    FUZZ_ASSERT(std::isfinite(event.time) && event.time >= 0,
                "accepted a non-finite or negative fault time");
    FUZZ_ASSERT(event.time >= last_time, "ordered() is not time-sorted");
    last_time = event.time;
    if (event.kind == FaultKind::kLinkDegrade)
      FUZZ_ASSERT(event.severity > 0 && event.severity < 1,
                  "accepted a degrade severity outside (0, 1)");
  }

  const std::string text = script.to_text();
  mecoff::Result<FaultScript> reparsed = FaultScript::parse(text);
  FUZZ_ASSERT(reparsed.ok(),
              ("to_text() output failed to reparse: " +
               (reparsed.ok() ? std::string() : reparsed.error().message) +
               "\n--- text ---\n" + text)
                  .c_str());
  FUZZ_ASSERT(reparsed.value().to_text() == text,
              ("fault-script round trip is not a fixed point:\n"
               "--- first ---\n" +
               text + "--- second ---\n" + reparsed.value().to_text())
                  .c_str());
  return 0;
}
