// Standalone driver for the fuzz harnesses (no libFuzzer required).
//
// Replays every file in the given corpus directories through
// LLVMFuzzerTestOneInput, then runs a deterministic mutation loop:
// each iteration picks a corpus entry with a fixed-seed xorshift64,
// applies a few byte flips / truncations / splices, and feeds the
// mutant back in. This is NOT coverage-guided fuzzing — it is a smoke
// test that the harness invariants hold on the committed corpus and
// its immediate neighborhood, cheap enough to run as a ctest on every
// build with any compiler. Real fuzzing uses the Clang-only
// -fsanitize=fuzzer binaries that CMake adds when available.
//
// Usage: <binary> [--iterations=N] <corpus-dir>...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// xorshift64: tiny, seedable, and identical everywhere — the smoke
// run must be reproducible across compilers and platforms.
std::uint64_t rng_state = 0x6d656366757a7aULL;  // "mecfuzz"

std::uint64_t next_rand() {
  std::uint64_t x = rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return rng_state = x;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void mutate(std::vector<std::uint8_t>& data,
            const std::vector<std::vector<std::uint8_t>>& corpus) {
  const std::uint64_t op = next_rand() % 5;
  switch (op) {
    case 0:  // flip a byte
      if (!data.empty()) data[next_rand() % data.size()] ^= 1 << (next_rand() % 8);
      break;
    case 1:  // truncate
      if (!data.empty()) data.resize(next_rand() % data.size());
      break;
    case 2:  // insert a random byte
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(
                      next_rand() % (data.size() + 1)),
                  static_cast<std::uint8_t>(next_rand()));
      break;
    case 3: {  // splice a tail from another corpus entry
      const std::vector<std::uint8_t>& other =
          corpus[next_rand() % corpus.size()];
      const std::size_t cut = data.empty() ? 0 : next_rand() % data.size();
      const std::size_t from = other.empty() ? 0 : next_rand() % other.size();
      data.resize(cut);
      data.insert(data.end(), other.begin() + static_cast<std::ptrdiff_t>(from),
                  other.end());
      break;
    }
    default:  // overwrite a byte with an interesting value
      if (!data.empty()) {
        static const std::uint8_t kInteresting[] = {
            0, 1, 0x7f, 0x80, 0xff, ' ', '\n', '\r', '-', '.', '#', '0', '9'};
        data[next_rand() % data.size()] =
            kInteresting[next_rand() % (sizeof kInteresting)];
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 2000;
  std::vector<std::filesystem::path> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iterations=", 0) == 0) {
      iterations = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 13, nullptr, 10));
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) {
    std::fprintf(stderr, "usage: %s [--iterations=N] <corpus-dir>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const std::filesystem::path& dir : dirs) {
    if (!std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "smoke: no such corpus dir: %s\n",
                   dir.string().c_str());
      return 2;
    }
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());  // deterministic replay order
    for (const auto& file : files) corpus.push_back(read_file(file));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "smoke: empty corpus\n");
    return 2;
  }

  for (const std::vector<std::uint8_t>& entry : corpus)
    LLVMFuzzerTestOneInput(entry.data(), entry.size());

  for (std::size_t i = 0; i < iterations; ++i) {
    std::vector<std::uint8_t> data = corpus[next_rand() % corpus.size()];
    const std::uint64_t rounds = 1 + next_rand() % 4;
    for (std::uint64_t r = 0; r < rounds; ++r) mutate(data, corpus);
    LLVMFuzzerTestOneInput(data.data(), data.size());
  }

  std::printf("smoke: %zu corpus entries + %zu mutated inputs OK\n",
              corpus.size(), iterations);
  return 0;
}
