// Shared helpers for the fuzz harnesses.
//
// Every harness is a single translation unit exporting the libFuzzer
// entry point `LLVMFuzzerTestOneInput`. Built with -fsanitize=fuzzer
// (Clang) it becomes a coverage-guided fuzzer; linked against
// support/smoke_main.cpp (any compiler) it becomes a deterministic
// corpus-replay + mutation smoke binary that ctest runs on every
// build. The invariants live in the harness, not the driver, so both
// modes check exactly the same contracts.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace mecoff::fuzz {

/// Invariant check for fuzz harnesses. Unlike assert(), it is active
/// in every build mode (fuzzers compiled with NDEBUG must still trap),
/// and it aborts so both libFuzzer and the smoke driver treat a
/// violated contract as a crash, not a soft failure.
#define FUZZ_ASSERT(cond, what)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s\n  at %s:%d\n  %s\n",   \
                   #cond, __FILE__, __LINE__, (what));                     \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Consumes typed values from the front of the raw fuzz input.
/// Exhausted input yields zeros — harnesses must remain total on any
/// byte string, so "ran out of entropy" degrades to boring values
/// instead of an error path.
class InputReader {
 public:
  InputReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t take_u8() {
    return pos_ < size_ ? data_[pos_++] : std::uint8_t{0};
  }

  std::uint64_t take_u64() {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value = (value << 8) | take_u8();
    return value;
  }

  /// Uniform-ish draw in [0, bound); bound == 0 yields 0.
  std::size_t take_index(std::size_t bound) {
    return bound ? static_cast<std::size_t>(take_u64() % bound) : 0;
  }

  /// A finite non-negative double in a tame range. Raw bit patterns
  /// would mostly be NaN/inf/denormal, which the model layers reject
  /// before the interesting code runs; a scaled integer keeps the
  /// values inside every MECOFF_EXPECTS precondition while still
  /// exercising zeros, exact ties and -0.0 (via the sign bit below).
  double take_weight() {
    const std::uint64_t raw = take_u64();
    return static_cast<double>(raw % 1000000) / 128.0;
  }

  /// The rest of the input as a string (for text-format parsers).
  std::string take_rest() {
    std::string rest(reinterpret_cast<const char*>(data_) + pos_,
                     size_ - pos_);
    pos_ = size_;
    return rest;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace mecoff::fuzz
