app T
function ui compute=3 unoffloadable
function heavy compute=200
call ui heavy data=4
