# Empty compiler generated dependencies file for mecoff_cli.
# This may be replaced when dependencies are built.
