file(REMOVE_RECURSE
  "CMakeFiles/mecoff_cli.dir/mecoff_cli.cpp.o"
  "CMakeFiles/mecoff_cli.dir/mecoff_cli.cpp.o.d"
  "mecoff_cli"
  "mecoff_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
