app R
function ui compute=2 unoffloadable
function w compute=150
call ui w data=5
