# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_generate_compress]=] "sh" "-c" "/root/repo/build/tools/mecoff_cli generate nodes=100 edges=400 seed=2 > cli_test.graph && /root/repo/build/tools/mecoff_cli compress cli_test.graph")
set_tests_properties([=[cli_generate_compress]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_cut_all_algos]=] "sh" "-c" "/root/repo/build/tools/mecoff_cli generate nodes=60 edges=240 > g.el && for a in spectral maxflow kl fm multilevel sw; do /root/repo/build/tools/mecoff_cli cut g.el algo=\$a || exit 1; done")
set_tests_properties([=[cli_cut_all_algos]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_kway]=] "sh" "-c" "/root/repo/build/tools/mecoff_cli generate nodes=80 edges=320 > k.el && /root/repo/build/tools/mecoff_cli kway k.el parts=4")
set_tests_properties([=[cli_kway]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_solve_dsl]=] "sh" "-c" "printf 'app T
function ui compute=3 unoffloadable
function heavy compute=200
call ui heavy data=4
' > t.dsl && /root/repo/build/tools/mecoff_cli simulate t.dsl")
set_tests_properties([=[cli_solve_dsl]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_trace]=] "sh" "-c" "printf 'enter main 0.0
enter work 0.1
exit work 2.0
exit main 2.1
send main work 256
pin main
' > t.trace && /root/repo/build/tools/mecoff_cli trace t.trace")
set_tests_properties([=[cli_trace]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_rejects_garbage]=] "sh" "-c" "! /root/repo/build/tools/mecoff_cli frobnicate && ! /root/repo/build/tools/mecoff_cli solve /nonexistent.dsl")
set_tests_properties([=[cli_rejects_garbage]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_stats]=] "sh" "-c" "/root/repo/build/tools/mecoff_cli generate nodes=50 edges=200 > s.el && /root/repo/build/tools/mecoff_cli stats s.el")
set_tests_properties([=[cli_stats]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_profile]=] "sh" "-c" "printf 'app P
function ui compute=2 unoffloadable
function w compute=90
call ui w data=3
' > p.dsl && /root/repo/build/tools/mecoff_cli solve p.dsl profile=lte_smallcell")
set_tests_properties([=[cli_profile]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_scheme_roundtrip]=] "sh" "-c" "printf 'app R
function ui compute=2 unoffloadable
function w compute=150
call ui w data=5
' > r.dsl && /root/repo/build/tools/mecoff_cli solve r.dsl out=r.scheme && /root/repo/build/tools/mecoff_cli simulate r.dsl scheme=r.scheme")
set_tests_properties([=[cli_scheme_roundtrip]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
