app P
function ui compute=2 unoffloadable
function w compute=90
call ui w data=3
