# Empty compiler generated dependencies file for channel_aware.
# This may be replaced when dependencies are built.
