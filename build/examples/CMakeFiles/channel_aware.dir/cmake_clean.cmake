file(REMOVE_RECURSE
  "CMakeFiles/channel_aware.dir/channel_aware.cpp.o"
  "CMakeFiles/channel_aware.dir/channel_aware.cpp.o.d"
  "channel_aware"
  "channel_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
