file(REMOVE_RECURSE
  "CMakeFiles/multi_user_campus.dir/multi_user_campus.cpp.o"
  "CMakeFiles/multi_user_campus.dir/multi_user_campus.cpp.o.d"
  "multi_user_campus"
  "multi_user_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
