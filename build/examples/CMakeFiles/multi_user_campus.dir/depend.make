# Empty dependencies file for multi_user_campus.
# This may be replaced when dependencies are built.
