# Empty compiler generated dependencies file for face_pipeline.
# This may be replaced when dependencies are built.
