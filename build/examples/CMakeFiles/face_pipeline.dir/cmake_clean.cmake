file(REMOVE_RECURSE
  "CMakeFiles/face_pipeline.dir/face_pipeline.cpp.o"
  "CMakeFiles/face_pipeline.dir/face_pipeline.cpp.o.d"
  "face_pipeline"
  "face_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
