
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/face_pipeline.cpp" "examples/CMakeFiles/face_pipeline.dir/face_pipeline.cpp.o" "gcc" "examples/CMakeFiles/face_pipeline.dir/face_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/lpa/CMakeFiles/mecoff_lpa.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/mecoff_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/mecoff_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/mecoff_kl.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/mecoff_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecoff_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecoff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
