# Empty dependencies file for arrival_dynamics.
# This may be replaced when dependencies are built.
