file(REMOVE_RECURSE
  "CMakeFiles/arrival_dynamics.dir/arrival_dynamics.cpp.o"
  "CMakeFiles/arrival_dynamics.dir/arrival_dynamics.cpp.o.d"
  "arrival_dynamics"
  "arrival_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
