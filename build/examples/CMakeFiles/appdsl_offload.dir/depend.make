# Empty dependencies file for appdsl_offload.
# This may be replaced when dependencies are built.
