file(REMOVE_RECURSE
  "CMakeFiles/appdsl_offload.dir/appdsl_offload.cpp.o"
  "CMakeFiles/appdsl_offload.dir/appdsl_offload.cpp.o.d"
  "appdsl_offload"
  "appdsl_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appdsl_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
