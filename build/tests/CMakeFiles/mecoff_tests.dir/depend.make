# Empty dependencies file for mecoff_tests.
# This may be replaced when dependencies are built.
