
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adaptive_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/adaptive_test.cpp.o.d"
  "/root/repo/tests/appmodel_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/appmodel_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/appmodel_test.cpp.o.d"
  "/root/repo/tests/channel_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/channel_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/channel_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/dag_executor_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/dag_executor_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/dag_executor_test.cpp.o.d"
  "/root/repo/tests/eigensolver_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/eigensolver_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/eigensolver_test.cpp.o.d"
  "/root/repo/tests/experiments_smoke_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/experiments_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/experiments_smoke_test.cpp.o.d"
  "/root/repo/tests/failure_injection_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/fm_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/fm_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/fm_test.cpp.o.d"
  "/root/repo/tests/generators_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/generators_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/greedy_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/greedy_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/jacobi_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/jacobi_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/jacobi_test.cpp.o.d"
  "/root/repo/tests/kl_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/kl_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/kl_test.cpp.o.d"
  "/root/repo/tests/kway_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/kway_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/kway_test.cpp.o.d"
  "/root/repo/tests/linalg_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/linalg_test.cpp.o.d"
  "/root/repo/tests/lpa_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/lpa_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/lpa_test.cpp.o.d"
  "/root/repo/tests/mec_costs_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/mec_costs_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/mec_costs_test.cpp.o.d"
  "/root/repo/tests/mincut_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/mincut_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/mincut_test.cpp.o.d"
  "/root/repo/tests/multilevel_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/multilevel_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/multilevel_test.cpp.o.d"
  "/root/repo/tests/multiserver_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/multiserver_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/multiserver_test.cpp.o.d"
  "/root/repo/tests/offloader_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/offloader_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/offloader_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/property_extended_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/property_extended_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/property_extended_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/scheme_io_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/scheme_io_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/scheme_io_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/spectral_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/spectral_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/spectral_test.cpp.o.d"
  "/root/repo/tests/trace_import_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/trace_import_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/trace_import_test.cpp.o.d"
  "/root/repo/tests/validation_test.cpp" "tests/CMakeFiles/mecoff_tests.dir/validation_test.cpp.o" "gcc" "tests/CMakeFiles/mecoff_tests.dir/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/lpa/CMakeFiles/mecoff_lpa.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/mecoff_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/mecoff_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/mecoff_kl.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/mecoff_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecoff_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecoff_sim.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/mecoff_benchsupport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
