
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectral/bipartitioner.cpp" "src/spectral/CMakeFiles/mecoff_spectral.dir/bipartitioner.cpp.o" "gcc" "src/spectral/CMakeFiles/mecoff_spectral.dir/bipartitioner.cpp.o.d"
  "/root/repo/src/spectral/fiedler.cpp" "src/spectral/CMakeFiles/mecoff_spectral.dir/fiedler.cpp.o" "gcc" "src/spectral/CMakeFiles/mecoff_spectral.dir/fiedler.cpp.o.d"
  "/root/repo/src/spectral/kway.cpp" "src/spectral/CMakeFiles/mecoff_spectral.dir/kway.cpp.o" "gcc" "src/spectral/CMakeFiles/mecoff_spectral.dir/kway.cpp.o.d"
  "/root/repo/src/spectral/splitter.cpp" "src/spectral/CMakeFiles/mecoff_spectral.dir/splitter.cpp.o" "gcc" "src/spectral/CMakeFiles/mecoff_spectral.dir/splitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
