file(REMOVE_RECURSE
  "libmecoff_spectral.a"
)
