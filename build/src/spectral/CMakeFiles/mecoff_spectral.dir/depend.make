# Empty dependencies file for mecoff_spectral.
# This may be replaced when dependencies are built.
