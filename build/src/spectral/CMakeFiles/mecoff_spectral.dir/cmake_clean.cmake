file(REMOVE_RECURSE
  "CMakeFiles/mecoff_spectral.dir/bipartitioner.cpp.o"
  "CMakeFiles/mecoff_spectral.dir/bipartitioner.cpp.o.d"
  "CMakeFiles/mecoff_spectral.dir/fiedler.cpp.o"
  "CMakeFiles/mecoff_spectral.dir/fiedler.cpp.o.d"
  "CMakeFiles/mecoff_spectral.dir/kway.cpp.o"
  "CMakeFiles/mecoff_spectral.dir/kway.cpp.o.d"
  "CMakeFiles/mecoff_spectral.dir/splitter.cpp.o"
  "CMakeFiles/mecoff_spectral.dir/splitter.cpp.o.d"
  "libmecoff_spectral.a"
  "libmecoff_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
