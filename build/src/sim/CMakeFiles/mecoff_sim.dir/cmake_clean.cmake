file(REMOVE_RECURSE
  "CMakeFiles/mecoff_sim.dir/channel.cpp.o"
  "CMakeFiles/mecoff_sim.dir/channel.cpp.o.d"
  "CMakeFiles/mecoff_sim.dir/dag_executor.cpp.o"
  "CMakeFiles/mecoff_sim.dir/dag_executor.cpp.o.d"
  "CMakeFiles/mecoff_sim.dir/engine.cpp.o"
  "CMakeFiles/mecoff_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mecoff_sim.dir/executor.cpp.o"
  "CMakeFiles/mecoff_sim.dir/executor.cpp.o.d"
  "CMakeFiles/mecoff_sim.dir/resources.cpp.o"
  "CMakeFiles/mecoff_sim.dir/resources.cpp.o.d"
  "libmecoff_sim.a"
  "libmecoff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
