# Empty compiler generated dependencies file for mecoff_sim.
# This may be replaced when dependencies are built.
