file(REMOVE_RECURSE
  "libmecoff_sim.a"
)
