# Empty compiler generated dependencies file for mecoff_appmodel.
# This may be replaced when dependencies are built.
