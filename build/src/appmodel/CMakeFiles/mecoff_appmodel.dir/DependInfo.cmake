
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appmodel/application.cpp" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/application.cpp.o" "gcc" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/application.cpp.o.d"
  "/root/repo/src/appmodel/dsl_parser.cpp" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/dsl_parser.cpp.o" "gcc" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/dsl_parser.cpp.o.d"
  "/root/repo/src/appmodel/synthetic_apps.cpp" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/synthetic_apps.cpp.o" "gcc" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/synthetic_apps.cpp.o.d"
  "/root/repo/src/appmodel/trace_import.cpp" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/trace_import.cpp.o" "gcc" "src/appmodel/CMakeFiles/mecoff_appmodel.dir/trace_import.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
