file(REMOVE_RECURSE
  "libmecoff_appmodel.a"
)
