file(REMOVE_RECURSE
  "CMakeFiles/mecoff_appmodel.dir/application.cpp.o"
  "CMakeFiles/mecoff_appmodel.dir/application.cpp.o.d"
  "CMakeFiles/mecoff_appmodel.dir/dsl_parser.cpp.o"
  "CMakeFiles/mecoff_appmodel.dir/dsl_parser.cpp.o.d"
  "CMakeFiles/mecoff_appmodel.dir/synthetic_apps.cpp.o"
  "CMakeFiles/mecoff_appmodel.dir/synthetic_apps.cpp.o.d"
  "CMakeFiles/mecoff_appmodel.dir/trace_import.cpp.o"
  "CMakeFiles/mecoff_appmodel.dir/trace_import.cpp.o.d"
  "libmecoff_appmodel.a"
  "libmecoff_appmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_appmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
