
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kl/fiduccia_mattheyses.cpp" "src/kl/CMakeFiles/mecoff_kl.dir/fiduccia_mattheyses.cpp.o" "gcc" "src/kl/CMakeFiles/mecoff_kl.dir/fiduccia_mattheyses.cpp.o.d"
  "/root/repo/src/kl/kernighan_lin.cpp" "src/kl/CMakeFiles/mecoff_kl.dir/kernighan_lin.cpp.o" "gcc" "src/kl/CMakeFiles/mecoff_kl.dir/kernighan_lin.cpp.o.d"
  "/root/repo/src/kl/multilevel.cpp" "src/kl/CMakeFiles/mecoff_kl.dir/multilevel.cpp.o" "gcc" "src/kl/CMakeFiles/mecoff_kl.dir/multilevel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
