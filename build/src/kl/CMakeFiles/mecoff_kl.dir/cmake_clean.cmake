file(REMOVE_RECURSE
  "CMakeFiles/mecoff_kl.dir/fiduccia_mattheyses.cpp.o"
  "CMakeFiles/mecoff_kl.dir/fiduccia_mattheyses.cpp.o.d"
  "CMakeFiles/mecoff_kl.dir/kernighan_lin.cpp.o"
  "CMakeFiles/mecoff_kl.dir/kernighan_lin.cpp.o.d"
  "CMakeFiles/mecoff_kl.dir/multilevel.cpp.o"
  "CMakeFiles/mecoff_kl.dir/multilevel.cpp.o.d"
  "libmecoff_kl.a"
  "libmecoff_kl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
