file(REMOVE_RECURSE
  "libmecoff_kl.a"
)
