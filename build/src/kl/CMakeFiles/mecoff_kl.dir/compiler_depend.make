# Empty compiler generated dependencies file for mecoff_kl.
# This may be replaced when dependencies are built.
