file(REMOVE_RECURSE
  "libmecoff_mincut.a"
)
