# Empty compiler generated dependencies file for mecoff_mincut.
# This may be replaced when dependencies are built.
