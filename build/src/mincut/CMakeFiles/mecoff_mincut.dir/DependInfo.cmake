
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mincut/bipartitioner.cpp" "src/mincut/CMakeFiles/mecoff_mincut.dir/bipartitioner.cpp.o" "gcc" "src/mincut/CMakeFiles/mecoff_mincut.dir/bipartitioner.cpp.o.d"
  "/root/repo/src/mincut/dinic.cpp" "src/mincut/CMakeFiles/mecoff_mincut.dir/dinic.cpp.o" "gcc" "src/mincut/CMakeFiles/mecoff_mincut.dir/dinic.cpp.o.d"
  "/root/repo/src/mincut/edmonds_karp.cpp" "src/mincut/CMakeFiles/mecoff_mincut.dir/edmonds_karp.cpp.o" "gcc" "src/mincut/CMakeFiles/mecoff_mincut.dir/edmonds_karp.cpp.o.d"
  "/root/repo/src/mincut/flow_network.cpp" "src/mincut/CMakeFiles/mecoff_mincut.dir/flow_network.cpp.o" "gcc" "src/mincut/CMakeFiles/mecoff_mincut.dir/flow_network.cpp.o.d"
  "/root/repo/src/mincut/stoer_wagner.cpp" "src/mincut/CMakeFiles/mecoff_mincut.dir/stoer_wagner.cpp.o" "gcc" "src/mincut/CMakeFiles/mecoff_mincut.dir/stoer_wagner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
