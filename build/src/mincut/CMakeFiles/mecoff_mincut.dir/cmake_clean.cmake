file(REMOVE_RECURSE
  "CMakeFiles/mecoff_mincut.dir/bipartitioner.cpp.o"
  "CMakeFiles/mecoff_mincut.dir/bipartitioner.cpp.o.d"
  "CMakeFiles/mecoff_mincut.dir/dinic.cpp.o"
  "CMakeFiles/mecoff_mincut.dir/dinic.cpp.o.d"
  "CMakeFiles/mecoff_mincut.dir/edmonds_karp.cpp.o"
  "CMakeFiles/mecoff_mincut.dir/edmonds_karp.cpp.o.d"
  "CMakeFiles/mecoff_mincut.dir/flow_network.cpp.o"
  "CMakeFiles/mecoff_mincut.dir/flow_network.cpp.o.d"
  "CMakeFiles/mecoff_mincut.dir/stoer_wagner.cpp.o"
  "CMakeFiles/mecoff_mincut.dir/stoer_wagner.cpp.o.d"
  "libmecoff_mincut.a"
  "libmecoff_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
