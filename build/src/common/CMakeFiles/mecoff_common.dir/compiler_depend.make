# Empty compiler generated dependencies file for mecoff_common.
# This may be replaced when dependencies are built.
