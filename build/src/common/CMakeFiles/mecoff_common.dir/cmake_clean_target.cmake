file(REMOVE_RECURSE
  "libmecoff_common.a"
)
