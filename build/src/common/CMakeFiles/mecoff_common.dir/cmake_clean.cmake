file(REMOVE_RECURSE
  "CMakeFiles/mecoff_common.dir/config.cpp.o"
  "CMakeFiles/mecoff_common.dir/config.cpp.o.d"
  "CMakeFiles/mecoff_common.dir/logging.cpp.o"
  "CMakeFiles/mecoff_common.dir/logging.cpp.o.d"
  "CMakeFiles/mecoff_common.dir/rng.cpp.o"
  "CMakeFiles/mecoff_common.dir/rng.cpp.o.d"
  "CMakeFiles/mecoff_common.dir/strings.cpp.o"
  "CMakeFiles/mecoff_common.dir/strings.cpp.o.d"
  "libmecoff_common.a"
  "libmecoff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
