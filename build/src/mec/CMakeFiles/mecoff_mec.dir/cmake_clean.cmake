file(REMOVE_RECURSE
  "CMakeFiles/mecoff_mec.dir/adaptive.cpp.o"
  "CMakeFiles/mecoff_mec.dir/adaptive.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/costs.cpp.o"
  "CMakeFiles/mecoff_mec.dir/costs.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/greedy.cpp.o"
  "CMakeFiles/mecoff_mec.dir/greedy.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/model.cpp.o"
  "CMakeFiles/mecoff_mec.dir/model.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/multiserver.cpp.o"
  "CMakeFiles/mecoff_mec.dir/multiserver.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/offloader.cpp.o"
  "CMakeFiles/mecoff_mec.dir/offloader.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/profiles.cpp.o"
  "CMakeFiles/mecoff_mec.dir/profiles.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/scheme.cpp.o"
  "CMakeFiles/mecoff_mec.dir/scheme.cpp.o.d"
  "CMakeFiles/mecoff_mec.dir/scheme_io.cpp.o"
  "CMakeFiles/mecoff_mec.dir/scheme_io.cpp.o.d"
  "libmecoff_mec.a"
  "libmecoff_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
