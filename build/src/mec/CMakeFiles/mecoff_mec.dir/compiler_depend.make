# Empty compiler generated dependencies file for mecoff_mec.
# This may be replaced when dependencies are built.
