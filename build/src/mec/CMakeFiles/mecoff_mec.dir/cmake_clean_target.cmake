file(REMOVE_RECURSE
  "libmecoff_mec.a"
)
