
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/adaptive.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/adaptive.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/adaptive.cpp.o.d"
  "/root/repo/src/mec/costs.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/costs.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/costs.cpp.o.d"
  "/root/repo/src/mec/greedy.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/greedy.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/greedy.cpp.o.d"
  "/root/repo/src/mec/model.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/model.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/model.cpp.o.d"
  "/root/repo/src/mec/multiserver.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/multiserver.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/multiserver.cpp.o.d"
  "/root/repo/src/mec/offloader.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/offloader.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/offloader.cpp.o.d"
  "/root/repo/src/mec/profiles.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/profiles.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/profiles.cpp.o.d"
  "/root/repo/src/mec/scheme.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/scheme.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/scheme.cpp.o.d"
  "/root/repo/src/mec/scheme_io.cpp" "src/mec/CMakeFiles/mecoff_mec.dir/scheme_io.cpp.o" "gcc" "src/mec/CMakeFiles/mecoff_mec.dir/scheme_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lpa/CMakeFiles/mecoff_lpa.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/mecoff_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/mecoff_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/mecoff_kl.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
