file(REMOVE_RECURSE
  "libmecoff_linalg.a"
)
