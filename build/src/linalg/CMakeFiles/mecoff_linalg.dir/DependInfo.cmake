
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/cg.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/cg.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/jacobi.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/jacobi.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/jacobi.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/lanczos.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/lanczos.cpp.o.d"
  "/root/repo/src/linalg/laplacian.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/laplacian.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/laplacian.cpp.o.d"
  "/root/repo/src/linalg/power_iteration.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/power_iteration.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/power_iteration.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/sparse_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/linalg/tridiagonal.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/tridiagonal.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/tridiagonal.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/mecoff_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/mecoff_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
