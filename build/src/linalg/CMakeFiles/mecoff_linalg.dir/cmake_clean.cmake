file(REMOVE_RECURSE
  "CMakeFiles/mecoff_linalg.dir/cg.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/jacobi.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/jacobi.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/lanczos.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/lanczos.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/laplacian.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/laplacian.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/power_iteration.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/power_iteration.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/tridiagonal.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/tridiagonal.cpp.o.d"
  "CMakeFiles/mecoff_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/mecoff_linalg.dir/vector_ops.cpp.o.d"
  "libmecoff_linalg.a"
  "libmecoff_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
