# Empty dependencies file for mecoff_linalg.
# This may be replaced when dependencies are built.
