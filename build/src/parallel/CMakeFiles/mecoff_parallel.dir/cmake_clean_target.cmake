file(REMOVE_RECURSE
  "libmecoff_parallel.a"
)
