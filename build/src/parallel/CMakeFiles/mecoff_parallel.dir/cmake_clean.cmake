file(REMOVE_RECURSE
  "CMakeFiles/mecoff_parallel.dir/parallel_spmv.cpp.o"
  "CMakeFiles/mecoff_parallel.dir/parallel_spmv.cpp.o.d"
  "CMakeFiles/mecoff_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/mecoff_parallel.dir/thread_pool.cpp.o.d"
  "libmecoff_parallel.a"
  "libmecoff_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
