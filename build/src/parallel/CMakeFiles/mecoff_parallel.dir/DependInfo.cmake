
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/parallel_spmv.cpp" "src/parallel/CMakeFiles/mecoff_parallel.dir/parallel_spmv.cpp.o" "gcc" "src/parallel/CMakeFiles/mecoff_parallel.dir/parallel_spmv.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/mecoff_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/mecoff_parallel.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
