# Empty dependencies file for mecoff_parallel.
# This may be replaced when dependencies are built.
