# Empty dependencies file for mecoff_graph.
# This may be replaced when dependencies are built.
