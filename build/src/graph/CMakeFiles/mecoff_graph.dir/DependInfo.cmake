
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/partition.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/subgraph.cpp.o.d"
  "/root/repo/src/graph/validation.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/validation.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/validation.cpp.o.d"
  "/root/repo/src/graph/weighted_graph.cpp" "src/graph/CMakeFiles/mecoff_graph.dir/weighted_graph.cpp.o" "gcc" "src/graph/CMakeFiles/mecoff_graph.dir/weighted_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
