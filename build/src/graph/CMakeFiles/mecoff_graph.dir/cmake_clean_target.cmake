file(REMOVE_RECURSE
  "libmecoff_graph.a"
)
