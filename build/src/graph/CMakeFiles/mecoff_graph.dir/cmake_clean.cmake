file(REMOVE_RECURSE
  "CMakeFiles/mecoff_graph.dir/components.cpp.o"
  "CMakeFiles/mecoff_graph.dir/components.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/generators.cpp.o"
  "CMakeFiles/mecoff_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/io.cpp.o"
  "CMakeFiles/mecoff_graph.dir/io.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/metrics.cpp.o"
  "CMakeFiles/mecoff_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/partition.cpp.o"
  "CMakeFiles/mecoff_graph.dir/partition.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/subgraph.cpp.o"
  "CMakeFiles/mecoff_graph.dir/subgraph.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/validation.cpp.o"
  "CMakeFiles/mecoff_graph.dir/validation.cpp.o.d"
  "CMakeFiles/mecoff_graph.dir/weighted_graph.cpp.o"
  "CMakeFiles/mecoff_graph.dir/weighted_graph.cpp.o.d"
  "libmecoff_graph.a"
  "libmecoff_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
