
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lpa/compressor.cpp" "src/lpa/CMakeFiles/mecoff_lpa.dir/compressor.cpp.o" "gcc" "src/lpa/CMakeFiles/mecoff_lpa.dir/compressor.cpp.o.d"
  "/root/repo/src/lpa/pipeline.cpp" "src/lpa/CMakeFiles/mecoff_lpa.dir/pipeline.cpp.o" "gcc" "src/lpa/CMakeFiles/mecoff_lpa.dir/pipeline.cpp.o.d"
  "/root/repo/src/lpa/propagation.cpp" "src/lpa/CMakeFiles/mecoff_lpa.dir/propagation.cpp.o" "gcc" "src/lpa/CMakeFiles/mecoff_lpa.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
