file(REMOVE_RECURSE
  "CMakeFiles/mecoff_lpa.dir/compressor.cpp.o"
  "CMakeFiles/mecoff_lpa.dir/compressor.cpp.o.d"
  "CMakeFiles/mecoff_lpa.dir/pipeline.cpp.o"
  "CMakeFiles/mecoff_lpa.dir/pipeline.cpp.o.d"
  "CMakeFiles/mecoff_lpa.dir/propagation.cpp.o"
  "CMakeFiles/mecoff_lpa.dir/propagation.cpp.o.d"
  "libmecoff_lpa.a"
  "libmecoff_lpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_lpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
