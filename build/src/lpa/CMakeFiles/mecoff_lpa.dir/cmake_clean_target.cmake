file(REMOVE_RECURSE
  "libmecoff_lpa.a"
)
