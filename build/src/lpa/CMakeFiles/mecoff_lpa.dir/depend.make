# Empty dependencies file for mecoff_lpa.
# This may be replaced when dependencies are built.
