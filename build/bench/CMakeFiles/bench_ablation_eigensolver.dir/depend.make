# Empty dependencies file for bench_ablation_eigensolver.
# This may be replaced when dependencies are built.
