file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eigensolver.dir/bench_ablation_eigensolver.cpp.o"
  "CMakeFiles/bench_ablation_eigensolver.dir/bench_ablation_eigensolver.cpp.o.d"
  "bench_ablation_eigensolver"
  "bench_ablation_eigensolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
