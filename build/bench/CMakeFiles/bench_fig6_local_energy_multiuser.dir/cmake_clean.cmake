file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_local_energy_multiuser.dir/bench_fig6_local_energy_multiuser.cpp.o"
  "CMakeFiles/bench_fig6_local_energy_multiuser.dir/bench_fig6_local_energy_multiuser.cpp.o.d"
  "bench_fig6_local_energy_multiuser"
  "bench_fig6_local_energy_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_local_energy_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
