# Empty dependencies file for bench_fig6_local_energy_multiuser.
# This may be replaced when dependencies are built.
