file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiserver.dir/bench_ablation_multiserver.cpp.o"
  "CMakeFiles/bench_ablation_multiserver.dir/bench_ablation_multiserver.cpp.o.d"
  "bench_ablation_multiserver"
  "bench_ablation_multiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
