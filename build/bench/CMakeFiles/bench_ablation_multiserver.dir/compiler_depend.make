# Empty compiler generated dependencies file for bench_ablation_multiserver.
# This may be replaced when dependencies are built.
