# Empty dependencies file for mecoff_benchsupport.
# This may be replaced when dependencies are built.
