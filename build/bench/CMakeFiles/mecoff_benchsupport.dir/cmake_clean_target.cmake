file(REMOVE_RECURSE
  "libmecoff_benchsupport.a"
)
