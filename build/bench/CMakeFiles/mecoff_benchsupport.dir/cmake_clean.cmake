file(REMOVE_RECURSE
  "CMakeFiles/mecoff_benchsupport.dir/support/figures.cpp.o"
  "CMakeFiles/mecoff_benchsupport.dir/support/figures.cpp.o.d"
  "CMakeFiles/mecoff_benchsupport.dir/support/reporting.cpp.o"
  "CMakeFiles/mecoff_benchsupport.dir/support/reporting.cpp.o.d"
  "CMakeFiles/mecoff_benchsupport.dir/support/workloads.cpp.o"
  "CMakeFiles/mecoff_benchsupport.dir/support/workloads.cpp.o.d"
  "libmecoff_benchsupport.a"
  "libmecoff_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecoff_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
