# Empty dependencies file for bench_fig7_transmission_multiuser.
# This may be replaced when dependencies are built.
