
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_transmission_multiuser.cpp" "bench/CMakeFiles/bench_fig7_transmission_multiuser.dir/bench_fig7_transmission_multiuser.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_transmission_multiuser.dir/bench_fig7_transmission_multiuser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mecoff_benchsupport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecoff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/mecoff_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecoff_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/lpa/CMakeFiles/mecoff_lpa.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/mecoff_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mecoff_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mecoff_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/mecoff_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/mecoff_kl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mecoff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecoff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
