# Empty dependencies file for bench_ablation_cut_quality.
# This may be replaced when dependencies are built.
