file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cut_quality.dir/bench_ablation_cut_quality.cpp.o"
  "CMakeFiles/bench_ablation_cut_quality.dir/bench_ablation_cut_quality.cpp.o.d"
  "bench_ablation_cut_quality"
  "bench_ablation_cut_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cut_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
