# Empty compiler generated dependencies file for bench_fig8_total_multiuser.
# This may be replaced when dependencies are built.
