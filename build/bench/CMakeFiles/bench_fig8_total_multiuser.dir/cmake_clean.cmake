file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_total_multiuser.dir/bench_fig8_total_multiuser.cpp.o"
  "CMakeFiles/bench_fig8_total_multiuser.dir/bench_fig8_total_multiuser.cpp.o.d"
  "bench_fig8_total_multiuser"
  "bench_fig8_total_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_total_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
