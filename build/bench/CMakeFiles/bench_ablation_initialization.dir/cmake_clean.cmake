file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_initialization.dir/bench_ablation_initialization.cpp.o"
  "CMakeFiles/bench_ablation_initialization.dir/bench_ablation_initialization.cpp.o.d"
  "bench_ablation_initialization"
  "bench_ablation_initialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_initialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
