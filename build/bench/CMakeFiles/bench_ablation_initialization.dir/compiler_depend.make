# Empty compiler generated dependencies file for bench_ablation_initialization.
# This may be replaced when dependencies are built.
