// Closed-loop chaos soak for the solve service: the whole robustness
// surface exercised in one run, with a machine-readable trajectory.
//
// Eight phases drive >= 10k requests through a SolveService while a
// serve::FaultInjector replays seeded fault scripts against it (shard
// kills with failover, injected solve latency that forces hedged
// retries, a stolen cache publish, exhausted deadline budgets,
// brownout admission under a client flood, and a graceful drain):
//
//   cold           each steady-state app solved once, sequentially —
//                  fills the cache, records the reference placements;
//   steady         warm-cache closed loop: the healthy baseline the
//                  chaos phases are compared against;
//   open_loop      warm-cache open loop: each client paces requests at
//                  a fixed arrival rate (the open_loop_rate_hz knob)
//                  instead of closing the loop on responses;
//   chaos_kill     fresh app set under a script that kills shards
//                  while their cold solves are being dispatched, then
//                  kills ALL shards, then recovers — plus one stolen
//                  publish (the "result lost on the way back" fault
//                  riders survive by promotion);
//   chaos_latency  fresh app set, every shard scripted with ~45 ms of
//                  injected solve latency, per-request budgets of
//                  80 ms — riders blow their hedge wait and duplicate
//                  the solve on another shard, or degrade on budget
//                  exhaustion;
//   budget_zero    fresh app set with a 0-second budget: every request
//                  deterministically degrades to the valid all-local
//                  scheme (the budget is spent before any solve);
//   brownout       a second service with tiny brownout tiers flooded
//                  by 8 closed-loop clients — progressive shedding
//                  engages and the hysteresis controller recovers as
//                  the cache warms;
//   drain          begin_drain() on the main service while clients are
//                  still sending: every response comes back instantly
//                  as the all-local degrade, then await_idle confirms
//                  nothing is left in flight.
//
// INVARIANTS (the run fails, and tools/bench_gate.py re-asserts them
// from the committed trajectory): zero errors, zero placement
// mismatches (every non-degraded response byte-identical to its cold
// reference), zero wedged responses (none slower than the watchdog
// threshold), zero unanswered requests. Chaos degrades quality, never
// correctness.
//
// Output: human tables plus one "[trajectory] {...}" line (schema
// mecoff.soak_trajectory.v1) that tools/bench_gate.py diffs against
// bench/BENCH_soak_baseline.json — deterministic counts exactly,
// timing-dependent ones presence-only. `out=<path>` also writes the
// trajectory document to a file. A second "[timeline] {...}" line
// (schema mecoff.timeline.v1) carries the soak-wide metrics curve,
// sampled only at quiescent harness barriers with the deterministic
// key filter — replaying the soak reprints it byte-for-byte.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "mec/scheme.hpp"
#include "obs/timeline.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fault_injector.hpp"
#include "serve/solve_service.hpp"
#include "sim/fault_script.hpp"
#include "support/load_harness.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

// Small apps keep the whole soak around CI-smoke scale while still
// running the full spectral pipeline per cold solve.
constexpr PaperScale kScale{60, 290};
constexpr std::size_t kSteadyApps = 12;
constexpr std::size_t kChaosApps = 8;
constexpr std::size_t kClients = 4;
constexpr double kWedgeSeconds = 5.0;
// Every load phase is split into this many barrier-delimited segments,
// so each phase contributes >= 3 cumulative samples to its curve and
// the shared timeline.
constexpr std::size_t kSegments = 3;

struct PhaseRecord {
  std::string name;
  std::size_t clients = 0;
  LoadOutcome outcome;
};

std::vector<serve::SolveRequest> make_apps(std::size_t count,
                                           std::size_t seed_base) {
  std::vector<serve::SolveRequest> requests;
  requests.reserve(count);
  for (std::size_t a = 0; a < count; ++a)
    requests.push_back({make_user(kScale, seed_base + a), paper_params()});
  return requests;
}

/// Reference placements from a pristine service (same solver config,
/// no injector): what an unconstrained cold solve returns. Chaos
/// phases compare every full-quality response against these.
std::vector<std::vector<mec::Placement>> solve_reference(
    parallel::ThreadPool& pool,
    const std::vector<serve::SolveRequest>& requests) {
  serve::SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 4;
  serve::SolveService reference_service(options);
  std::vector<std::vector<mec::Placement>> reference;
  reference.reserve(requests.size());
  for (const serve::SolveRequest& request : requests) {
    auto r = reference_service.solve(request);
    if (!r.ok() || r.value().degraded) return {};
    reference.push_back(std::move(r.value().placement));
  }
  return reference;
}

std::string phase_json(const PhaseRecord& record) {
  const LoadOutcome& o = record.outcome;
  std::string json = "{\"name\":\"" + record.name + "\"";
  json += ",\"clients\":" + std::to_string(record.clients);
  json += ",\"requests\":" + std::to_string(o.requests);
  json += ",\"errors\":" + std::to_string(o.errors);
  json += ",\"mismatches\":" + std::to_string(o.mismatches);
  json += ",\"wedged\":" + std::to_string(o.wedged);
  json += ",\"solved\":" + std::to_string(o.solved);
  json += ",\"hits\":" + std::to_string(o.hits);
  json += ",\"coalesced\":" + std::to_string(o.coalesced);
  json += ",\"shed\":" + std::to_string(o.shed);
  json += ",\"hedged\":" + std::to_string(o.hedged);
  json += ",\"deadline_degraded\":" + std::to_string(o.deadline_degraded);
  json += ",\"degraded\":" + std::to_string(o.degraded);
  json += ",\"wall_seconds\":" + format_general(o.wall_seconds, 6);
  json += ",\"p50_seconds\":" + format_general(o.percentile(0.50), 6);
  json += ",\"p95_seconds\":" + format_general(o.percentile(0.95), 6);
  json += ",\"p99_seconds\":" + format_general(o.percentile(0.99), 6);
  if (!o.samples.empty()) {
    json += ",\"samples\":[";
    for (std::size_t i = 0; i < o.samples.size(); ++i) {
      const SegmentSample& s = o.samples[i];
      if (i > 0) json += ',';
      json += "{\"segment\":" + std::to_string(s.segment);
      json += ",\"requests\":" + std::to_string(s.requests);
      json += ",\"solved\":" + std::to_string(s.solved);
      json += ",\"hits\":" + std::to_string(s.hits);
      json += ",\"coalesced\":" + std::to_string(s.coalesced);
      json += ",\"shed\":" + std::to_string(s.shed);
      json += ",\"hedged\":" + std::to_string(s.hedged);
      json += ",\"deadline_degraded\":" + std::to_string(s.deadline_degraded);
      json += ",\"degraded\":" + std::to_string(s.degraded);
      json += ",\"wall_seconds\":" + format_general(s.wall_seconds, 6);
      json += '}';
    }
    json += ']';
  }
  json += '}';
  return json;
}

int run(const std::string& out_path) {
  parallel::ThreadPool pool(4);
  serve::FaultInjector injector({/*shards=*/4,
                                 /*latency_scale_seconds=*/0.05});
  serve::SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 4;
  options.hedge_fraction = 0.25;
  options.injector = &injector;
  serve::SolveService service(options);

  const std::vector<serve::SolveRequest> steady_apps =
      make_apps(kSteadyApps, /*seed_base=*/900);
  const std::vector<serve::SolveRequest> kill_apps =
      make_apps(kChaosApps, /*seed_base=*/930);
  const std::vector<serve::SolveRequest> latency_apps =
      make_apps(kChaosApps, /*seed_base=*/960);
  const std::vector<serve::SolveRequest> budget_apps =
      make_apps(kChaosApps, /*seed_base=*/990);

  // One timeline spans the whole soak, sampled only at harness barriers
  // (and the cold loop's manual checkpoints) with a globally monotonic
  // tick — the cumulative request count across phases. The key filter
  // keeps exactly the counters that are deterministic at quiescent
  // barriers, which is what makes the [timeline] line byte-identical
  // across replays (manual mode emits no wall-clock fields).
  obs::Timeline::Options timeline_options;
  timeline_options.capacity = 64;
  timeline_options.mode = obs::Timeline::Mode::kManual;
  timeline_options.keys = {"serve.solve.requests", "serve.solve.drained"};
  obs::Timeline timeline(timeline_options);

  std::vector<PhaseRecord> phases;
  std::size_t issued = 0;
  // Segment every load phase and sample the timeline at each boundary.
  // `base` is the soak-wide request count when the phase starts, so
  // ticks stay monotonic across phases.
  const auto curve = [&timeline](LoadOptions& load, std::size_t base) {
    load.segments = kSegments;
    load.on_segment = [&timeline, base](const SegmentSample& sample) {
      timeline.sample_now(base + sample.requests);
    };
  };
  // arm() resets the injector's counters with the rest of its state, so
  // fold them into running totals before every re-arm.
  std::uint64_t fault_events_applied = 0;
  std::uint64_t fault_publish_steals = 0;
  const auto snapshot_faults = [&] {
    const serve::FaultInjector::Stats snap = injector.stats();
    fault_events_applied += snap.events_applied;
    fault_publish_steals += snap.publish_failures;
  };

  // -- cold: fill the cache, keep the reference placements ------------
  std::vector<std::vector<mec::Placement>> steady_reference(kSteadyApps);
  {
    PhaseRecord record{"cold", 1, {}};
    const Stopwatch timer;
    for (std::size_t a = 0; a < kSteadyApps; ++a) {
      auto r = service.solve(steady_apps[a]);
      ++record.outcome.requests;
      if (!r.ok()) {
        ++record.outcome.errors;
        continue;
      }
      if (r.value().source != serve::SolveSource::kSolved ||
          r.value().degraded) {
        std::fprintf(stderr, "cold solve %zu not a clean miss\n", a);
        return 1;
      }
      record.outcome.latencies.push_back(r.value().latency_seconds);
      ++record.outcome.solved;
      steady_reference[a] = std::move(r.value().placement);
      // Manual checkpoints: the sequential cold loop has no harness
      // barriers, so fold a cumulative sample every third of the way.
      if ((a + 1) % (kSteadyApps / kSegments) == 0) {
        SegmentSample sample;
        sample.segment = record.outcome.samples.size() + 1;
        sample.requests = record.outcome.requests;
        sample.solved = record.outcome.solved;
        sample.wall_seconds = timer.elapsed_seconds();
        timeline.sample_now(sample.requests);  // cold starts at tick 0
        record.outcome.samples.push_back(sample);
      }
    }
    record.outcome.wall_seconds = timer.elapsed_seconds();
    issued += kSteadyApps;
    phases.push_back(std::move(record));
  }

  // -- steady: the healthy warm-cache baseline ------------------------
  {
    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 3000;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    phases.push_back(
        {"steady", kClients,
         run_load(service, steady_apps, steady_reference, load)});
  }

  // -- open_loop: fixed arrival rate against the warm cache -----------
  {
    // The dormant knob, exercised: each of the 4 clients paces its own
    // 150-request share at 150 req/s (request i due at i/rate on the
    // client's clock) instead of closing the loop on the previous
    // response. Warm cache + no faults keeps the service comfortably
    // ahead of the arrival schedule, so the curve shows a rate-shaped
    // request ramp rather than a contention artefact — and every
    // response still checks byte-identical against the reference.
    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 600;
    load.open_loop_rate_hz = 150.0;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    phases.push_back(
        {"open_loop", kClients,
         run_load(service, steady_apps, steady_reference, load)});
  }

  // -- chaos_kill: shard kills + failover + one stolen publish --------
  const std::vector<std::vector<mec::Placement>> kill_reference =
      solve_reference(pool, kill_apps);
  if (kill_reference.empty()) {
    std::fprintf(stderr, "reference solve for chaos_kill failed\n");
    return 1;
  }
  {
    // Script times are request sequence numbers (arm() resets the
    // clock). Shards 0 and 1 die while the app set's cold solves are
    // dispatched; one publish is stolen; then EVERY shard dies for a
    // window (cache hits keep flowing; anything cold degrades to
    // all-local); then full recovery.
    sim::FaultScript script;
    script.crash_server(1, 0)
        .crash_server(3, 1)
        .disconnect_user(5, 0)
        .crash_server(600, 2)
        .crash_server(600, 3)
        .recover_server(1200, 0)
        .recover_server(1200, 1)
        .recover_server(1200, 2)
        .recover_server(1200, 3);
    injector.arm(script);
    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 2500;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    phases.push_back({"chaos_kill", kClients,
                      run_load(service, kill_apps, kill_reference, load)});
  }

  // -- chaos_latency: injected stalls vs deadline budgets -------------
  const std::vector<std::vector<mec::Placement>> latency_reference =
      solve_reference(pool, latency_apps);
  if (latency_reference.empty()) {
    std::fprintf(stderr, "reference solve for chaos_latency failed\n");
    return 1;
  }
  {
    // Severity 0.9 x 50 ms scale = 45 ms injected per cold solve on
    // every shard; budgets are 80 ms with hedge_fraction 0.25, so a
    // rider waits at most ~20 ms before hedging into the same storm.
    sim::FaultScript script;
    script.degrade_link(1, 0, 0.9)
        .degrade_link(1, 1, 0.9)
        .degrade_link(1, 2, 0.9)
        .degrade_link(1, 3, 0.9)
        .restore_link(1500, 0)
        .restore_link(1500, 1)
        .restore_link(1500, 2)
        .restore_link(1500, 3);
    snapshot_faults();
    injector.arm(script);

    // Deterministic hedge probe: client A cold-solves an app into the
    // 45 ms stall; client B arrives 10 ms later as a rider, blows its
    // ~20 ms hedge wait while A is still stalled, and MUST hedge. The
    // two responses are folded into this phase's tallies.
    PhaseRecord record{"chaos_latency", kClients, {}};
    {
      serve::SolveRequest probe = latency_apps[0];
      probe.deadline_seconds = 0.08;
      std::optional<serve::SolveResponse> responses[2];
      bool failed[2] = {false, false};
      auto issue = [&](std::size_t slot, double delay_seconds) {
        if (delay_seconds > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(delay_seconds));
        auto r = service.solve(probe);
        if (r.ok())
          responses[slot] = std::move(r.value());
        else
          failed[slot] = true;
      };
      std::thread owner([&] { issue(0, 0.0); });
      std::thread rider([&] { issue(1, 0.010); });
      owner.join();
      rider.join();
      issued += 2;
      for (std::size_t slot = 0; slot < 2; ++slot) {
        ++record.outcome.requests;
        if (failed[slot] || !responses[slot]) {
          ++record.outcome.errors;
          continue;
        }
        const serve::SolveResponse& response = *responses[slot];
        record.outcome.latencies.push_back(response.latency_seconds);
        switch (response.source) {
          case serve::SolveSource::kSolved: ++record.outcome.solved; break;
          case serve::SolveSource::kCacheHit: ++record.outcome.hits; break;
          case serve::SolveSource::kCoalesced:
            ++record.outcome.coalesced;
            break;
          case serve::SolveSource::kShed: ++record.outcome.shed; break;
          case serve::SolveSource::kHedged: ++record.outcome.hedged; break;
          case serve::SolveSource::kDeadlineDegraded:
            ++record.outcome.deadline_degraded;
            break;
        }
        if (response.degraded) ++record.outcome.degraded;
        if (!response.degraded &&
            response.placement != latency_reference[0])
          ++record.outcome.mismatches;
      }
    }

    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 2500;
    load.deadline_seconds = 0.08;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    const LoadOutcome storm =
        run_load(service, latency_apps, latency_reference, load);
    record.outcome.samples = storm.samples;
    record.outcome.requests += storm.requests;
    record.outcome.errors += storm.errors;
    record.outcome.mismatches += storm.mismatches;
    record.outcome.wedged += storm.wedged;
    record.outcome.solved += storm.solved;
    record.outcome.hits += storm.hits;
    record.outcome.coalesced += storm.coalesced;
    record.outcome.shed += storm.shed;
    record.outcome.hedged += storm.hedged;
    record.outcome.deadline_degraded += storm.deadline_degraded;
    record.outcome.degraded += storm.degraded;
    record.outcome.wall_seconds += storm.wall_seconds;
    record.outcome.latencies.insert(record.outcome.latencies.end(),
                                    storm.latencies.begin(),
                                    storm.latencies.end());
    std::sort(record.outcome.latencies.begin(),
              record.outcome.latencies.end());
    phases.push_back(std::move(record));
  }

  // -- budget_zero: deterministic deadline exhaustion -----------------
  {
    snapshot_faults();
    injector.arm(sim::FaultScript{});  // clear all standing faults
    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 600;
    load.deadline_seconds = 0.0;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    // Never-seen apps + a zero budget: the budget is spent before any
    // solve can start, so every response is the all-local degrade.
    phases.push_back({"budget_zero", kClients,
                      run_load(service, budget_apps, {}, load)});
  }

  // -- brownout: progressive shedding under a client flood ------------
  {
    serve::SolveServiceOptions flood_options;
    flood_options.pool = &pool;
    flood_options.shards = 4;
    flood_options.brownout.enabled = true;
    flood_options.brownout.tier1_in_flight = 2;
    flood_options.brownout.tier2_in_flight = 4;
    flood_options.brownout.tier3_in_flight = 6;
    serve::SolveService flood_service(flood_options);
    LoadOptions load;
    load.clients = 8;
    load.total_requests = 1200;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    phases.push_back(
        {"brownout", 8,
         run_load(flood_service, steady_apps, steady_reference, load)});
  }

  // -- drain: graceful shutdown under load ----------------------------
  bool drained_clean = false;
  {
    service.begin_drain();
    LoadOptions load;
    load.clients = kClients;
    load.total_requests = 400;
    load.wedge_seconds = kWedgeSeconds;
    curve(load, issued);
    issued += load.total_requests;
    PhaseRecord record{"drain", kClients,
                       run_load(service, steady_apps, {}, load)};
    drained_clean = record.outcome.shed == record.outcome.requests &&
                    service.await_idle(/*timeout_seconds=*/10.0);
    phases.push_back(std::move(record));
  }

  // -- report ---------------------------------------------------------
  LoadOutcome totals;
  std::vector<std::vector<std::string>> rows;
  for (const PhaseRecord& record : phases) {
    const LoadOutcome& o = record.outcome;
    totals.requests += o.requests;
    totals.errors += o.errors;
    totals.mismatches += o.mismatches;
    totals.wedged += o.wedged;
    totals.solved += o.solved;
    totals.hits += o.hits;
    totals.coalesced += o.coalesced;
    totals.shed += o.shed;
    totals.hedged += o.hedged;
    totals.deadline_degraded += o.deadline_degraded;
    totals.degraded += o.degraded;
    totals.wall_seconds += o.wall_seconds;
    rows.push_back({record.name, std::to_string(o.requests),
                    format_fixed(o.wall_seconds, 3) + " s",
                    format_fixed(o.percentile(0.99) * 1e3, 2) + " ms",
                    std::to_string(o.hits), std::to_string(o.hedged),
                    std::to_string(o.deadline_degraded),
                    std::to_string(o.shed + o.degraded)});
  }
  const std::size_t unanswered = issued - totals.requests;
  print_table("Chaos soak (seeded fault scripts against the live service)",
              {"phase", "requests", "wall", "p99", "hits", "hedged",
               "deadline", "shed+degr"},
              rows);

  const serve::SolveService::Stats stats = service.stats();
  snapshot_faults();
  std::printf(
      "faults: %llu events applied, %llu publish steals, "
      "%llu shard failovers\n",
      static_cast<unsigned long long>(fault_events_applied),
      static_cast<unsigned long long>(fault_publish_steals),
      static_cast<unsigned long long>(stats.shard_failovers));

  const auto by_name = [&phases](const char* name) -> const PhaseRecord& {
    for (const PhaseRecord& record : phases)
      if (record.name == name) return record;
    return phases.front();
  };
  const PhaseRecord& budget_zero = by_name("budget_zero");
  print_shape_check("every request answered (none unanswered)",
                    unanswered == 0);
  print_shape_check("zero errors", totals.errors == 0);
  print_shape_check("non-degraded placements byte-identical to reference",
                    totals.mismatches == 0);
  print_shape_check("zero wedged responses", totals.wedged == 0);
  print_shape_check("soak is >= 10k requests", totals.requests >= 10000);
  print_shape_check("chaos_kill survived shard kills (failovers seen)",
                    stats.shard_failovers > 0);
  print_shape_check(
      "zero budget deterministically degrades every request",
      budget_zero.outcome.deadline_degraded == budget_zero.outcome.requests);
  print_shape_check("injected latency forced hedged retries",
                    stats.hedged > 0);
  print_shape_check("drain answered everything and went idle",
                    drained_clean);
  bool curves_complete = true;
  for (const PhaseRecord& record : phases)
    if (record.outcome.samples.size() < kSegments) curves_complete = false;
  print_shape_check("every phase sampled a >= 3 point curve",
                    curves_complete);

  // The trajectory document. bench_gate.py compares the deterministic
  // counts exactly, treats timing-dependent entries presence-only, and
  // re-asserts invariants_zero == 0 in every candidate run.
  std::string doc = "{\"schema\":\"mecoff.soak_trajectory.v1\"";
  doc += ",\"title\":\"bench_soak\",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) doc += ',';
    doc += phase_json(phases[i]);
  }
  doc += "],\"totals\":{";
  doc += "\"requests\":" + std::to_string(totals.requests);
  doc += ",\"errors\":" + std::to_string(totals.errors);
  doc += ",\"mismatches\":" + std::to_string(totals.mismatches);
  doc += ",\"wedged\":" + std::to_string(totals.wedged);
  doc += ",\"unanswered\":" + std::to_string(unanswered);
  doc += ",\"solved\":" + std::to_string(totals.solved);
  doc += ",\"hits\":" + std::to_string(totals.hits);
  doc += ",\"coalesced\":" + std::to_string(totals.coalesced);
  doc += ",\"shed\":" + std::to_string(totals.shed);
  doc += ",\"hedged\":" + std::to_string(totals.hedged);
  doc += ",\"deadline_degraded\":" + std::to_string(totals.deadline_degraded);
  doc += ",\"degraded\":" + std::to_string(totals.degraded);
  doc += ",\"wall_seconds\":" + format_general(totals.wall_seconds, 6);
  doc += "},\"invariants_zero\":[\"totals.errors\",\"totals.mismatches\","
         "\"totals.wedged\",\"totals.unanswered\"]}";
  std::printf("[trajectory] %s\n", doc.c_str());
  // The soak-wide mecoff.timeline.v1 document: manual mode, barrier
  // ticks, deterministic key filter — a replayed run prints this line
  // byte-identically (CI diffs two runs).
  std::printf("[timeline] %s\n", timeline.to_json().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (out) out << doc << '\n';
    if (!out) std::fprintf(stderr, "could not write %s\n", out_path.c_str());
  }

  const bool ok =
      unanswered == 0 && totals.errors == 0 && totals.mismatches == 0 &&
      totals.wedged == 0 && totals.requests >= 10000 &&
      budget_zero.outcome.deadline_degraded == budget_zero.outcome.requests &&
      drained_clean && curves_complete;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "out=", 4) == 0) out_path = argv[i] + 4;
  }
  const int rc = run(out_path);
  print_metrics_json("bench_soak");
  return rc;
}
