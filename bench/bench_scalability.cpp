// Scalability — wall-clock of the full multi-user solve vs. user count,
// and vs. thread count at a fixed user count.
//
// The paper runs 5000 users on Spark; this repo's claim is that the
// replica-class lazy greedy makes the same scale interactive on one
// core, and that the per-user stage (compression + cut) then scales
// with threads on top of that. The first table sweeps users serially
// and checks sub-quadratic growth; the second pins 64 DISTINCT users
// (no identical_user_period, so every user is real work) and sweeps
// pool sizes, checking the pooled schemes stay bit-identical to the
// serial one and reporting the per-stage breakdown from SolveStats.
#include <cstdio>
#include <thread>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run_users_sweep() {
  std::vector<std::vector<std::string>> rows;
  std::vector<double> totals;
  std::vector<std::size_t> counts;
  for (const std::size_t users : {250u, 1000u, 4000u, 16000u}) {
    const mec::MecSystem system =
        make_multiuser_system(users, kMultiuserPoolSize, /*seed=*/77);

    mec::PipelineOptions opts;
    opts.propagation = paper_propagation();
    opts.identical_user_period = kMultiuserPoolSize;
    mec::PipelineOffloader offloader(opts);

    Stopwatch solve_timer;
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const double solve_s = solve_timer.elapsed_seconds();

    Stopwatch eval_timer;
    const mec::SystemCost cost = mec::evaluate(system, scheme);
    const double eval_s = eval_timer.elapsed_seconds();
    (void)cost;

    rows.push_back({std::to_string(users),
                    std::to_string(offloader.last_stats().num_parts),
                    std::to_string(offloader.last_stats().greedy_moves),
                    format_fixed(solve_s, 3) + " s",
                    format_fixed(eval_s, 3) + " s"});
    totals.push_back(solve_s);
    counts.push_back(users);
  }

  print_table("Scalability: full multi-user solve (4 prototype graphs of "
              "1000 functions, replica-class lazy greedy)",
              {"users", "parts", "greedy moves", "solve", "evaluate"},
              rows);

  // Sub-quadratic check across the extreme points: time ratio must be
  // well below the square of the user ratio.
  const double user_ratio = static_cast<double>(counts.back()) /
                            static_cast<double>(counts.front());
  const double time_ratio =
      totals.back() / std::max(totals.front(), 1e-6);
  std::printf("users x%s -> time x%s\n",
              format_fixed(user_ratio, 0).c_str(),
              format_fixed(time_ratio, 1).c_str());
  print_shape_check("solve time grows sub-quadratically in users",
                    time_ratio < user_ratio * user_ratio / 4.0);
  return 0;
}

int run_thread_sweep() {
  // 64 distinct mid-size users: the per-user stage dominates, which is
  // exactly what the parallel solve path is supposed to scale.
  constexpr std::size_t kUsers = 64;
  std::vector<mec::UserApp> users;
  users.reserve(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u)
    users.push_back(make_user(PaperScale{500, 2643}, /*seed=*/900 + u));
  const mec::MecSystem system{multiuser_params(), std::move(users)};

  mec::PipelineOptions opts;
  opts.propagation = paper_propagation();

  const auto solve_row = [&](const char* label, parallel::ThreadPool* pool,
                             double serial_s, mec::OffloadingScheme* out) {
    mec::PipelineOptions run_opts = opts;
    run_opts.pool = pool;
    mec::PipelineOffloader offloader(run_opts);
    Stopwatch timer;
    mec::OffloadingScheme scheme = offloader.solve(system);
    const double solve_s = timer.elapsed_seconds();
    const mec::PipelineOffloader::SolveStats& stats = offloader.last_stats();
    std::vector<std::string> row{
        label,
        format_fixed(solve_s, 3) + " s",
        format_fixed(stats.compress_seconds, 3) + " s",
        format_fixed(stats.cut_seconds, 3) + " s",
        format_fixed(stats.greedy_seconds, 3) + " s",
        serial_s > 0.0 ? format_fixed(serial_s / solve_s, 2) + "x" : "-"};
    if (out != nullptr) *out = std::move(scheme);
    return std::make_pair(row, solve_s);
  };

  mec::OffloadingScheme serial_scheme;
  std::vector<std::vector<std::string>> rows;
  auto [serial_row, serial_s] =
      solve_row("serial", nullptr, 0.0, &serial_scheme);
  rows.push_back(std::move(serial_row));

  bool identical = true;
  double speedup_at_8 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    mec::OffloadingScheme scheme;
    auto [row, solve_s] = solve_row(
        ("pool(" + std::to_string(threads) + ")").c_str(), &pool, serial_s,
        &scheme);
    rows.push_back(std::move(row));
    identical = identical && (scheme == serial_scheme);
    if (threads == 8) speedup_at_8 = serial_s / solve_s;
  }

  print_table("Scalability: 64 distinct users of 500 functions, "
              "serial vs. pooled per-user solve (compress/cut are summed "
              "task seconds; >wall clock when pooled)",
              {"engine", "solve", "compress", "cut", "greedy", "speedup"},
              rows);

  print_shape_check("pooled schemes bit-identical to serial", identical);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, speedup at 8 threads: %sx\n", cores,
              format_fixed(speedup_at_8, 2).c_str());
  // The parallel efficiency claim needs hardware to back it; on smaller
  // hosts the identity check above is the binding assertion.
  if (cores >= 8) {
    print_shape_check("solve >= 2x faster with 8 threads", speedup_at_8 >= 2.0);
  } else {
    // Oversubscribing 8 threads on a low-core host costs contention;
    // only guard against a pathological slowdown there.
    print_shape_check("8-thread pool no slower than 0.5x serial "
                      "(low-core host: 2x speedup not enforced)",
                      speedup_at_8 >= 0.5);
  }
  return 0;
}

}  // namespace

int main() {
  const int rc = run_users_sweep();
  if (rc != 0) return rc;
  const int rc2 = run_thread_sweep();
  // Registry dump covers both sweeps; compare against SolveStats rows
  // above (the gauges are written from the same doubles, see
  // src/mec/offloader.cpp).
  print_metrics_json("bench_scalability");
  return rc2;
}
