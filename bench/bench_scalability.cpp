// Scalability — wall-clock of the full multi-user solve vs. user count.
//
// The paper runs 5000 users on Spark; this repo's claim is that the
// replica-class lazy greedy makes the same scale interactive on one
// core. The bench times the three phases separately (per-prototype
// pipeline, Algorithm 2 greedy, final evaluate) and checks the total
// grows sub-quadratically.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  std::vector<std::vector<std::string>> rows;
  std::vector<double> totals;
  std::vector<std::size_t> counts;
  for (const std::size_t users : {250u, 1000u, 4000u, 16000u}) {
    const mec::MecSystem system =
        make_multiuser_system(users, kMultiuserPoolSize, /*seed=*/77);

    mec::PipelineOptions opts;
    opts.propagation = paper_propagation();
    opts.identical_user_period = kMultiuserPoolSize;
    mec::PipelineOffloader offloader(opts);

    Stopwatch solve_timer;
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const double solve_s = solve_timer.elapsed_seconds();

    Stopwatch eval_timer;
    const mec::SystemCost cost = mec::evaluate(system, scheme);
    const double eval_s = eval_timer.elapsed_seconds();
    (void)cost;

    rows.push_back({std::to_string(users),
                    std::to_string(offloader.last_stats().num_parts),
                    std::to_string(offloader.last_stats().greedy_moves),
                    format_fixed(solve_s, 3) + " s",
                    format_fixed(eval_s, 3) + " s"});
    totals.push_back(solve_s);
    counts.push_back(users);
  }

  print_table("Scalability: full multi-user solve (4 prototype graphs of "
              "1000 functions, replica-class lazy greedy)",
              {"users", "parts", "greedy moves", "solve", "evaluate"},
              rows);

  // Sub-quadratic check across the extreme points: time ratio must be
  // well below the square of the user ratio.
  const double user_ratio = static_cast<double>(counts.back()) /
                            static_cast<double>(counts.front());
  const double time_ratio =
      totals.back() / std::max(totals.front(), 1e-6);
  std::printf("users x%.0f -> time x%.1f\n", user_ratio, time_ratio);
  print_shape_check("solve time grows sub-quadratically in users",
                    time_ratio < user_ratio * user_ratio / 4.0);
  return 0;
}

}  // namespace

int main() { return run(); }
