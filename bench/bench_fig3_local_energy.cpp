// Figure 3 — local energy consumption vs. graph size (single user).
//
// Paper series (normalized): our algorithm {0.01, 0.02, 0.03, 0.11,
// 0.78}, max-flow min-cut {0.03, 0.04, 0.06, 0.14, 0.94}, Kernighan–Lin
// {0.03, 0.04, 0.06, 0.15, 1.00}. Shape: rises steeply with size; ours
// lowest at every point.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_size_sweep(/*seed=*/7);
  print_energy_figure("Figure 3: local energy consumption",
                      "graph size", points,
                      [](const AlgoResult& r) { return r.local_energy; },
                      /*ours_tolerance=*/0.10,
                      /*compare_against_kl=*/false);
  return 0;
}
