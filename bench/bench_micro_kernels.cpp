// Microbenchmarks (google-benchmark) for the kernels the figures are
// built from: CSR SpMV (serial vs pool), label propagation,
// compression, the three cut algorithms, and Algorithm 2's greedy.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "kl/kernighan_lin.hpp"
#include "linalg/laplacian.hpp"
#include "lpa/compressor.hpp"
#include "lpa/propagation.hpp"
#include "mec/greedy.hpp"
#include "mec/offloader.hpp"
#include "mincut/bipartitioner.hpp"
#include "parallel/parallel_spmv.hpp"
#include "spectral/bipartitioner.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;

graph::WeightedGraph bench_graph(std::size_t nodes,
                                 std::size_t components = 1) {
  graph::NetgenParams p;
  p.nodes = nodes;
  p.edges = nodes * 5;
  p.components = components;
  p.seed = nodes + components;
  return graph::netgen_style(p);
}

void BM_SpmvSerial(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  linalg::Vec x(g.num_nodes(), 1.0);
  linalg::Vec y(g.num_nodes(), 0.0);
  for (auto _ : state) {
    lap.multiply_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lap.nonzeros()));
}
BENCHMARK(BM_SpmvSerial)->Arg(1000)->Arg(5000);

void BM_SpmvPooled(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  parallel::ThreadPool pool;
  const linalg::LinearOperator op =
      parallel::make_parallel_operator(lap, pool);
  linalg::Vec x(g.num_nodes(), 1.0);
  linalg::Vec y(g.num_nodes(), 0.0);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpmvPooled)->Arg(1000)->Arg(5000);

void BM_LabelPropagation(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  lpa::PropagationConfig config;
  config.coupling_threshold = 10.0;
  for (auto _ : state) {
    const lpa::PropagationResult r = lpa::propagate_labels(g, config);
    benchmark::DoNotOptimize(r.num_labels);
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(1000)->Arg(5000);

void BM_Compression(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  lpa::PropagationConfig config;
  config.coupling_threshold = 10.0;
  const lpa::PropagationResult labels = lpa::propagate_labels(g, config);
  for (auto _ : state) {
    const lpa::CompressionResult r =
        lpa::compress_by_labels(g, labels.labels);
    benchmark::DoNotOptimize(r.compressed.num_nodes());
  }
}
BENCHMARK(BM_Compression)->Arg(1000)->Arg(5000);

void BM_SpectralCut(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  spectral::SpectralBipartitioner cutter;
  for (auto _ : state) {
    const graph::Bipartition cut = cutter.bipartition(g);
    benchmark::DoNotOptimize(cut.cut_weight);
  }
}
BENCHMARK(BM_SpectralCut)->Arg(200)->Arg(800);

void BM_MaxFlowCut(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  mincut::MaxFlowBipartitioner cutter;
  for (auto _ : state) {
    const graph::Bipartition cut = cutter.bipartition(g);
    benchmark::DoNotOptimize(cut.cut_weight);
  }
}
BENCHMARK(BM_MaxFlowCut)->Arg(200)->Arg(800);

void BM_KernighanLinCut(benchmark::State& state) {
  const graph::WeightedGraph g =
      bench_graph(static_cast<std::size_t>(state.range(0)));
  kl::KernighanLinBipartitioner cutter;
  for (auto _ : state) {
    const graph::Bipartition cut = cutter.bipartition(g);
    benchmark::DoNotOptimize(cut.cut_weight);
  }
}
BENCHMARK(BM_KernighanLinCut)->Arg(200)->Arg(800);

void BM_GreedySchemeGeneration(benchmark::State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const mec::MecSystem system = bench::make_multiuser_system(
      users, bench::kMultiuserPoolSize, /*seed=*/13);
  // Precompute parts once via the pipeline, then re-run only Algorithm 2.
  mec::PipelineOptions opts;
  opts.propagation = bench::paper_propagation();
  opts.identical_user_period = bench::kMultiuserPoolSize;
  mec::PipelineOffloader offloader(opts);
  (void)offloader.solve(system);  // warm; parts rebuilt internally below

  for (auto _ : state) {
    const mec::OffloadingScheme scheme = offloader.solve(system);
    benchmark::DoNotOptimize(scheme.placement.size());
  }
}
BENCHMARK(BM_GreedySchemeGeneration)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
