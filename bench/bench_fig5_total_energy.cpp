// Figure 5 — total energy consumption vs. graph size (single user).
//
// Paper series (normalized): our algorithm {0.02, 0.03, 0.05, 0.16,
// 0.79}, max-flow min-cut {0.04, 0.05, 0.08, 0.19, 0.95}, Kernighan–Lin
// {0.04, 0.06, 0.08, 0.21, 1.00}. Total = local + transmission, so the
// ordering of Figs. 3 and 4 carries over.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_size_sweep(/*seed=*/7);
  print_energy_figure("Figure 5: total energy consumption",
                      "graph size", points,
                      [](const AlgoResult& r) { return r.total_energy; });
  return 0;
}
