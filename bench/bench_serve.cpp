// Closed-loop driver for the online solve service: sustained request
// throughput at a p99 latency SLO, with the cache hit rate that makes
// it possible.
//
// Four deterministic phases (fixed request counts, so every serve.*
// counter is bit-stable for tools/bench_gate.py):
//   cold   each distinct app solved once, sequentially — all misses,
//          fills the cache and records the reference placements;
//   hot    concurrent closed-loop clients replaying the same apps —
//          100% cache hits; this is the phase the req/s and p50/p95/p99
//          numbers come from, and every response is checked
//          byte-identical to its cold placement;
//   shed   admission limit dropped to 0 (drain mode) — every request
//          degrades to an immediate all-local placement;
//   settle one sequential hit after restoring the limit, so the final
//          serve.solve.in_flight gauge write is deterministically 0.
//
// Latency percentiles are computed in-bench from the responses'
// latency_seconds (sorted sample), so the SLO check works with the obs
// facade compiled out too; the /metrics quantiles exposition of the
// same stream is exercised by the CLI smoke and obs_serve tests.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "mec/scheme.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/solve_service.hpp"
#include "support/load_harness.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

constexpr std::size_t kDistinctApps = 16;
constexpr std::size_t kClients = 4;
constexpr std::size_t kHotPerClient = 125;
constexpr std::size_t kShedRequests = 100;
constexpr double kP99SloSeconds = 0.050;

int run() {
  parallel::ThreadPool pool(4);
  serve::SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 4;
  serve::SolveService service(options);

  std::vector<serve::SolveRequest> requests;
  requests.reserve(kDistinctApps);
  for (std::size_t a = 0; a < kDistinctApps; ++a)
    requests.push_back({make_user(PaperScale{250, 1214}, /*seed=*/500 + a),
                        paper_params()});

  // -- cold: fill the cache, keep the reference placements ------------
  std::vector<std::vector<mec::Placement>> reference(kDistinctApps);
  Stopwatch cold_timer;
  for (std::size_t a = 0; a < kDistinctApps; ++a) {
    auto r = service.solve(requests[a]);
    if (!r.ok() || r.value().source != serve::SolveSource::kSolved) {
      std::fprintf(stderr, "cold solve %zu failed\n", a);
      return 1;
    }
    reference[a] = std::move(r.value().placement);
  }
  const double cold_s = cold_timer.elapsed_seconds();

  // -- hot: concurrent closed loop over a warm cache ------------------
  // The shared load harness replays the canonical (c + i) % apps
  // pattern this bench's baseline counters were committed with.
  constexpr std::size_t kHotTotal = kClients * kHotPerClient;
  LoadOptions hot_options;
  hot_options.clients = kClients;
  hot_options.total_requests = kHotTotal;
  const LoadOutcome hot = run_load(service, requests, reference, hot_options);
  const double hot_s = hot.wall_seconds;
  const std::size_t non_hits = hot.requests - hot.hits;
  const std::size_t mismatches = hot.mismatches;
  const double p50 = hot.percentile(0.50);
  const double p95 = hot.percentile(0.95);
  const double p99 = hot.percentile(0.99);

  // -- shed: drain mode -----------------------------------------------
  service.set_admission_limit(0);
  std::size_t shed_all_local = 0;
  Stopwatch shed_timer;
  for (std::size_t i = 0; i < kShedRequests; ++i) {
    auto r = service.solve(requests[i % kDistinctApps]);
    if (r.ok() && r.value().source == serve::SolveSource::kShed &&
        r.value().placement ==
            std::vector<mec::Placement>(r.value().placement.size(),
                                        mec::Placement::kLocal))
      ++shed_all_local;
  }
  const double shed_s = shed_timer.elapsed_seconds();

  // -- settle: deterministic final in_flight gauge write --------------
  service.set_admission_limit(SIZE_MAX);
  const auto settle = service.solve(requests[0]);

  const serve::SolveService::Stats stats = service.stats();
  const double hit_rate =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(std::max<std::uint64_t>(stats.requests, 1));
  print_table(
      "Solve service closed loop (16 apps of 250 functions, 4 clients)",
      {"phase", "requests", "wall", "req/s"},
      {{"cold (miss)", std::to_string(kDistinctApps),
        format_fixed(cold_s, 3) + " s",
        format_fixed(static_cast<double>(kDistinctApps) / cold_s, 0)},
       {"hot (hit)", std::to_string(kHotTotal),
        format_fixed(hot_s, 3) + " s",
        format_fixed(static_cast<double>(kHotTotal) / hot_s, 0)},
       {"shed", std::to_string(kShedRequests),
        format_fixed(shed_s, 3) + " s",
        format_fixed(static_cast<double>(kShedRequests) / shed_s, 0)}});
  std::printf("hot-phase latency: p50 %s ms, p95 %s ms, p99 %s ms "
              "(SLO %s ms)\n",
              format_fixed(p50 * 1e3, 3).c_str(),
              format_fixed(p95 * 1e3, 3).c_str(),
              format_fixed(p99 * 1e3, 3).c_str(),
              format_fixed(kP99SloSeconds * 1e3, 0).c_str());
  std::printf("cache hit rate: %s (%llu hits / %llu requests)\n",
              format_fixed(hit_rate, 3).c_str(),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.requests));

  print_shape_check("cold solves == distinct apps",
                    stats.solved == kDistinctApps);
  print_shape_check("hot phase served entirely from cache", non_hits == 0);
  print_shape_check("cache hits byte-identical to cold placements",
                    mismatches == 0);
  print_shape_check("cache hit rate > 0", stats.cache_hits > 0);
  print_shape_check("all shed responses are valid all-local",
                    shed_all_local == kShedRequests &&
                        stats.shed == kShedRequests);
  print_shape_check("hot p99 within SLO (50 ms)", p99 < kP99SloSeconds);
  const bool settle_hit =
      settle.ok() && settle.value().source == serve::SolveSource::kCacheHit;
  print_shape_check("service recovers after drain", settle_hit);

  const bool ok = stats.solved == kDistinctApps && non_hits == 0 &&
                  mismatches == 0 && shed_all_local == kShedRequests &&
                  settle_hit;
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  const int rc = run();
  // Counter section is bit-stable by construction (fixed phase sizes,
  // sequential misses, warm-cache hits); latency/seconds entries are
  // presence-only under the gate's default policy.
  print_metrics_json("bench_serve");
  return rc;
}
