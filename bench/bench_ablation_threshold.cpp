// Ablation — the coupling threshold `w` of the label rule.
//
// DESIGN.md question: how does the compression threshold trade graph
// size against cut quality? Small w merges everything reachable (tiny
// compressed graphs, coarse parts, inflexible schemes); large w merges
// nothing (huge graphs, slow cuts). The paper fixes one threshold; this
// sweep shows the plateau the choice sits on.
#include <cstdio>

#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  const PaperScale scale{1000, 4912};
  mec::MecSystem system{paper_params(), {make_user(scale, /*seed=*/5)}};

  std::vector<std::vector<std::string>> rows;
  for (const double threshold : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    mec::PipelineOptions opts;
    opts.backend = mec::CutBackend::kSpectral;
    opts.propagation = paper_propagation();
    opts.propagation.coupling_threshold = threshold;
    mec::PipelineOffloader offloader(opts);
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const mec::SystemCost cost = mec::evaluate(system, scheme);
    const auto& stats = offloader.last_stats();

    rows.push_back({format_fixed(threshold, 1),
                    std::to_string(stats.compression.compressed_nodes),
                    std::to_string(stats.num_parts),
                    format_fixed(cost.total_energy, 2),
                    format_fixed(cost.objective(), 2)});
  }
  print_table("Ablation: LPA coupling threshold w (spectral pipeline, "
              "1000-function graph)",
              {"threshold", "compressed nodes", "parts", "total energy",
               "objective E+T"},
              rows);
  return 0;
}

}  // namespace

int main() { return run(); }
