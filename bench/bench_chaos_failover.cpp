// Chaos benchmarks (google-benchmark) for the fault-tolerant serving
// path: the latency of a single failover step (the MTTR-critical
// number — how long users of a dead box wait for a new placement) and
// the throughput of full scripted chaos replays.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "mec/multiserver.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_script.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;

mec::MultiServerSystem chaos_system(std::size_t users,
                                    std::size_t servers) {
  mec::MultiServerSystem system;
  system.device = bench::paper_params();
  for (std::size_t s = 0; s < servers; ++s)
    system.servers.push_back(
        mec::ServerSpec{300.0 + 25.0 * static_cast<double>(s), 20.0, 8.0});
  for (std::size_t i = 0; i < users; ++i)
    system.users.push_back(
        bench::make_user(bench::PaperScale{250, 1214}, 700 + i));
  return system;
}

/// One server-crash failover step: orphan re-attachment plus the
/// receiving groups' re-solves. Setup (the initial solve) is excluded
/// via PauseTiming, so the measured cost is the recovery path alone.
void BM_FailoverServerCrash(benchmark::State& state) {
  const mec::MultiServerSystem system =
      chaos_system(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    state.PauseTiming();
    mec::FailoverController controller(system);
    state.ResumeTiming();
    const auto step = controller.on_server_failed(0);
    benchmark::DoNotOptimize(step.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FailoverServerCrash)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Hysteresis fast path: a link flap the margin suppresses. This is the
/// steady-state cost of a noisy radio — it should be FAR below the
/// crash path because nothing is re-placed.
void BM_FailoverSuppressedFlap(benchmark::State& state) {
  const mec::MultiServerSystem system =
      chaos_system(static_cast<std::size_t>(state.range(0)), 4);
  mec::FailoverOptions options;
  options.hysteresis_margin = 1e9;
  mec::FailoverController controller(system, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.on_link_degraded(1, 0.3).ok());
    benchmark::DoNotOptimize(controller.on_link_restored(1).ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_FailoverSuppressedFlap)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Full chaos replay: a seeded random crash/degrade/disconnect script
/// run end to end through the DES + failover controller.
void BM_ChaosScriptedReplay(benchmark::State& state) {
  const mec::MultiServerSystem system =
      chaos_system(static_cast<std::size_t>(state.range(0)), 3);
  sim::RandomFaultParams params;
  params.servers = system.servers.size();
  params.users = system.users.size();
  params.events = 12;
  const sim::FaultScript script = sim::FaultScript::random(params);
  for (auto _ : state) {
    const auto outcome = sim::run_chaos(system, script);
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(script.size()));
}
BENCHMARK(BM_ChaosScriptedReplay)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
