// Table I — graph compression results.
//
// Paper: NETGEN graphs of 250–5000 functions; reports function/edge
// counts before and after compression. Shape target: node reduction
// grows with graph size, exceeding 90% at 5000 functions.
#include <cstdio>

#include "common/strings.hpp"
#include "lpa/pipeline.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  std::vector<std::vector<std::string>> rows;
  double reduction_at_smallest = 0.0;
  double reduction_at_largest = 0.0;

  std::size_t index = 1;
  for (const PaperScale scale : paper_scales()) {
    const graph::WeightedGraph g =
        graph::netgen_style(netgen_for(scale, /*seed=*/scale.nodes));
    const std::vector<bool> pinned(g.num_nodes(), false);
    const lpa::CompressionPipelineResult result =
        lpa::compress_application(g, pinned, paper_propagation());
    const lpa::CompressionStats stats = result.aggregate_stats();

    rows.push_back({"Network" + std::to_string(index++),
                    std::to_string(stats.original_nodes),
                    std::to_string(stats.original_edges),
                    std::to_string(stats.compressed_nodes),
                    std::to_string(stats.compressed_edges),
                    format_fixed(100.0 * stats.node_reduction(), 1) + "%"});
    if (scale.nodes == paper_scales().front().nodes)
      reduction_at_smallest = stats.node_reduction();
    if (scale.nodes == paper_scales().back().nodes)
      reduction_at_largest = stats.node_reduction();
  }

  print_table("Table I: graph compression results",
              {"Network", "function number", "edge number",
               "function number after compression",
               "edge number after compression", "node reduction"},
              rows);
  print_shape_check("compression ratio grows with graph size",
                    reduction_at_largest > reduction_at_smallest);
  print_shape_check(">= 90% node reduction at 5000 functions",
                    reduction_at_largest >= 0.90);
  return 0;
}

}  // namespace

int main() { return run(); }
