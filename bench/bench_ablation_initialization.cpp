// Ablation — Algorithm 2's initialization ("Insert(V2', V1)").
//
// The paper's pseudocode moves an unspecified set V2' into V1 before
// the greedy loop; DESIGN.md §7.3 reads this as anchoring one cut side
// per component by myopic cost. This bench compares three starts,
// evaluated under the full E + T objective across the three cut
// algorithms:
//   anchored    — the repo's default (myopic per-component choice);
//   all-remote  — the literal "all parts in V2" start;
//   group-moves — all-remote start, but the greedy may retreat whole
//                 components (the DESIGN.md §7.4 extension).
// Expected: the anchored start and group moves both rescue the
// baselines from the pairwise trap; the plain all-remote start is where
// bad cuts hurt most — i.e., where the paper's figures come from.
#include <cstdio>

#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

double run_variant(const mec::MecSystem& system, mec::CutBackend backend,
                   bool anchored, bool group_moves) {
  mec::PipelineOptions opts;
  opts.backend = backend;
  opts.propagation = paper_propagation();
  opts.anchor_initial_parts = anchored;
  opts.greedy.enable_group_moves = group_moves;
  if (backend == mec::CutBackend::kMaxFlow) {
    opts.maxflow.strategy = mincut::TerminalStrategy::kBestOfK;
    opts.maxflow.num_pairs = 1;
  }
  mec::PipelineOffloader offloader(opts);
  return mec::evaluate(system, offloader.solve(system)).objective();
}

int run() {
  const PaperScale scale{1000, 4912};
  mec::MecSystem system{paper_params(), {make_user(scale, /*seed=*/11)}};

  std::vector<std::vector<std::string>> rows;
  double spread_plain = 0.0;
  double spread_group = 0.0;
  for (const mec::CutBackend backend : paper_backends()) {
    const double anchored = run_variant(system, backend, true, false);
    const double plain = run_variant(system, backend, false, false);
    const double grouped = run_variant(system, backend, false, true);
    rows.push_back({backend_label(backend), format_fixed(anchored, 1),
                    format_fixed(plain, 1), format_fixed(grouped, 1)});
    if (backend == mec::CutBackend::kSpectral) {
      spread_plain = plain;
      spread_group = grouped;
    } else if (backend == mec::CutBackend::kKernighanLin) {
      spread_plain = plain - spread_plain;    // KL − ours, plain start
      spread_group = grouped - spread_group;  // KL − ours, group moves
    }
  }

  print_table("Ablation: Algorithm 2 initialization (single user, "
              "1000-function graph; cells are E + T)",
              {"cut algorithm", "anchored start (default)",
               "all-remote start", "all-remote + group moves"},
              rows);
  std::printf(
      "KL-vs-spectral spread: %s with the plain all-remote start, "
      "%s once whole-component retreats are allowed — the paper's\n"
      "between-algorithm differences largely live in the greedy's "
      "single-move myopia.\n",
      format_fixed(spread_plain, 1).c_str(),
      format_fixed(spread_group, 1).c_str());
  print_shape_check(
      "group moves shrink the KL-vs-spectral spread of the plain start",
      spread_group <= spread_plain + 1e-9);
  return 0;
}

}  // namespace

int main() { return run(); }
