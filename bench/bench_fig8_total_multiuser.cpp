// Figure 8 — total energy consumption vs. user count (graph fixed at
// 1000 functions).
//
// Paper series (normalized): our algorithm {0.03, 0.14, 0.29, 0.45,
// 0.65}, max-flow min-cut {0.04, 0.21, 0.42, 0.68, 0.95}, Kernighan–Lin
// {0.04, 0.22, 0.46, 0.72, 1.00}.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_user_sweep(/*seed=*/21);
  print_energy_figure(
      "Figure 8: total energy consumption under multi-user conditions",
      "user size", points,
      [](const AlgoResult& r) { return r.total_energy; });
  return 0;
}
