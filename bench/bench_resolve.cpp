// Warm vs cold incremental re-solve on single-edge-perturbation
// workloads: the serving story this repo's warm-start path exists for.
//
// Each workload is a solved 250-node system whose next request is the
// SAME graph with ONE edge weight scaled — the canonical channel-drift
// delta. Two phases:
//
//   eigensolve  the spectral bill in isolation: cold Fiedler solve of
//               the perturbed Laplacian vs the same solve warm-started
//               from the pre-perturbation Fiedler vector (blocked SpMV
//               kernel on both sides). Matvec counts are seeded-
//               deterministic, so the ≥ 3× reduction is asserted and
//               the counters are bit-stable for tools/bench_gate.py.
//   re-solve    end to end through PipelineOffloader::solve(system,
//               warm): correctness gates (every warm scheme valid,
//               warm objective ≤ cold objective, Fiedler hints seeded)
//               plus wall-clock for the table.
//
// Wall-clock ratios are printed but never gated — the deterministic
// matvec ratio is the regression tripwire; seconds are presence-only
// under the gate's default tolerance policy.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "graph/weighted_graph.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "spectral/fiedler.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

constexpr std::size_t kWorkloads = 8;
constexpr std::size_t kNodes = 250;  // two 125-node communities
constexpr std::size_t kBridges = 3;
constexpr double kIntraEdgeProbability = 0.08;
constexpr std::size_t kTimingReps = 10;
constexpr double kMinMatvecSpeedup = 3.0;

/// Two dense communities joined by a few weak bridges — the shape the
/// offloading cut actually faces (local cluster vs remote cluster),
/// and the shape where the Fiedler value is well separated from λ₃ so
/// eigensolve iteration counts measure the start vector, not a
/// degenerate-pair resolution march.
graph::WeightedGraph make_workload(std::uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder builder;
  for (std::size_t v = 0; v < kNodes; ++v)
    builder.add_node(rng.uniform(0.5, 2.0));
  const std::size_t half = kNodes / 2;
  for (std::size_t side = 0; side < 2; ++side) {
    const std::size_t lo = side * half;
    const std::size_t hi = lo + half;
    for (std::size_t v = lo + 1; v < hi; ++v)  // spanning tree per side
      builder.add_edge(static_cast<graph::NodeId>(v),
                       static_cast<graph::NodeId>(rng.uniform_int(
                           static_cast<std::int64_t>(lo),
                           static_cast<std::int64_t>(v) - 1)),
                       rng.uniform(1.0, 3.0));
    for (std::size_t u = lo; u < hi; ++u)
      for (std::size_t v = u + 1; v < hi; ++v)
        if (rng.bernoulli(kIntraEdgeProbability))
          builder.add_edge(static_cast<graph::NodeId>(u),
                           static_cast<graph::NodeId>(v),
                           rng.uniform(1.0, 3.0));
  }
  for (std::size_t b = 0; b < kBridges; ++b)
    builder.add_edge(
        static_cast<graph::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(half) - 1)),
        static_cast<graph::NodeId>(rng.uniform_int(
            static_cast<std::int64_t>(half),
            static_cast<std::int64_t>(kNodes) - 1)),
        rng.uniform(0.05, 0.15));
  return builder.build();
}

/// The single-edge perturbation: edge (seed mod m) scaled by 1.1.
graph::WeightedGraph perturb_one_edge(const graph::WeightedGraph& g,
                                      std::uint64_t seed) {
  const std::size_t target = seed % g.num_edges();
  graph::GraphBuilder builder;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    builder.add_node(g.node_weight(v));
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i)
    builder.add_edge(edges[i].u, edges[i].v,
                     i == target ? edges[i].weight * 1.1 : edges[i].weight);
  return builder.build();
}

mec::MecSystem make_system(graph::WeightedGraph g) {
  mec::MecSystem system;
  system.params = paper_params();
  mec::UserApp user;
  user.graph = std::move(g);
  system.users.push_back(std::move(user));
  return system;
}

int run() {
  std::vector<graph::WeightedGraph> base;
  std::vector<graph::WeightedGraph> drifted;
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    base.push_back(make_workload(900 + w));
    drifted.push_back(perturb_one_edge(base.back(), 37 + w));
  }

  // -- eigensolve: deterministic matvec bill, cold vs warm ------------
  std::size_t cold_matvecs = 0;
  std::size_t warm_matvecs = 0;
  std::size_t nonconverged = 0;
  double max_value_gap = 0.0;
  std::vector<spectral::FiedlerResult> priors(kWorkloads);
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    spectral::FiedlerOptions options;
    options.spmv_kernel = linalg::SpmvKernel::kBlocked;
    priors[w] = spectral::fiedler_pair(base[w], options);

    const spectral::FiedlerResult cold =
        spectral::fiedler_pair(drifted[w], options);
    spectral::FiedlerOptions warm_options = options;
    warm_options.warm_start = &priors[w].vector;
    const spectral::FiedlerResult warm =
        spectral::fiedler_pair(drifted[w], warm_options);

    if (!priors[w].converged || !cold.converged || !warm.converged)
      ++nonconverged;
    cold_matvecs += cold.matvec_count;
    warm_matvecs += warm.matvec_count;
    max_value_gap = std::max(max_value_gap,
                             std::fabs(warm.value - cold.value));
  }
  const double matvec_speedup = static_cast<double>(cold_matvecs) /
                                static_cast<double>(std::max<std::size_t>(
                                    warm_matvecs, 1));

  // Wall clock over fixed reps (table only; counters stay deterministic
  // because the rep count is a constant).
  Stopwatch cold_timer;
  for (std::size_t rep = 0; rep < kTimingReps; ++rep)
    for (std::size_t w = 0; w < kWorkloads; ++w) {
      spectral::FiedlerOptions options;
      options.spmv_kernel = linalg::SpmvKernel::kBlocked;
      (void)spectral::fiedler_pair(drifted[w], options);
    }
  const double eig_cold_s = cold_timer.elapsed_seconds();
  Stopwatch warm_timer;
  for (std::size_t rep = 0; rep < kTimingReps; ++rep)
    for (std::size_t w = 0; w < kWorkloads; ++w) {
      spectral::FiedlerOptions options;
      options.spmv_kernel = linalg::SpmvKernel::kBlocked;
      options.warm_start = &priors[w].vector;
      (void)spectral::fiedler_pair(drifted[w], options);
    }
  const double eig_warm_s = warm_timer.elapsed_seconds();

  // -- end-to-end re-solve through the pipeline -----------------------
  std::size_t valid = 0;
  std::size_t warm_not_worse = 0;
  std::size_t fiedler_seeded = 0;
  double solve_cold_s = 0.0;
  double solve_warm_s = 0.0;
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    mec::PipelineOptions prior_options;
    prior_options.collect_fiedler_vectors = true;
    mec::PipelineOffloader prior_solver(prior_options);
    mec::PipelineOffloader::WarmStart warm;
    warm.scheme = prior_solver.solve(make_system(base[w]));
    warm.fiedler_vectors = prior_solver.last_artifacts().fiedler_vectors;

    const mec::MecSystem after = make_system(drifted[w]);
    mec::PipelineOffloader cold_solver;
    Stopwatch cold_solve_timer;
    const mec::OffloadingScheme cold_scheme = cold_solver.solve(after);
    solve_cold_s += cold_solve_timer.elapsed_seconds();

    mec::PipelineOffloader warm_solver;
    Stopwatch warm_solve_timer;
    const mec::OffloadingScheme warm_scheme = warm_solver.solve(after, &warm);
    solve_warm_s += warm_solve_timer.elapsed_seconds();

    if (warm_scheme.valid_for(after)) ++valid;
    if (mec::evaluate(after, warm_scheme).objective() <=
        mec::evaluate(after, cold_scheme).objective())
      ++warm_not_worse;
    fiedler_seeded += warm_solver.last_stats().warm_fiedler_seeded;
  }

  print_table(
      "Incremental re-solve, single-edge perturbation (8 workloads, "
      "250 nodes)",
      {"phase", "cold", "warm", "ratio"},
      {{"eigensolve matvecs", std::to_string(cold_matvecs),
        std::to_string(warm_matvecs), format_fixed(matvec_speedup, 2)},
       {"eigensolve wall (10 reps)", format_fixed(eig_cold_s, 3) + " s",
        format_fixed(eig_warm_s, 3) + " s",
        format_fixed(eig_cold_s / std::max(eig_warm_s, 1e-9), 2)},
       {"pipeline re-solve wall", format_fixed(solve_cold_s, 3) + " s",
        format_fixed(solve_warm_s, 3) + " s",
        format_fixed(solve_cold_s / std::max(solve_warm_s, 1e-9), 2)}});

  print_shape_check("all eigensolves converged", nonconverged == 0);
  print_shape_check("warm eigenvalue matches cold (gap < 1e-6)",
                    max_value_gap < 1e-6);
  print_shape_check("warm matvec reduction >= 3x",
                    matvec_speedup >= kMinMatvecSpeedup);
  print_shape_check("every warm scheme valid", valid == kWorkloads);
  print_shape_check("warm objective never above cold",
                    warm_not_worse == kWorkloads);
  print_shape_check("every warm solve seeded Fiedler hints",
                    fiedler_seeded >= kWorkloads);

  return (nonconverged == 0 && max_value_gap < 1e-6 &&
          matvec_speedup >= kMinMatvecSpeedup && valid == kWorkloads &&
          warm_not_worse == kWorkloads && fiedler_seeded >= kWorkloads)
             ? 0
             : 1;
}

}  // namespace

int main() {
  const int rc = run();
  // All counters are seeded-deterministic: fixed workloads, fixed rep
  // counts, no pool, naive kernel inside the pipeline, blocked kernel
  // in the eigensolve phase — bit-stable input for tools/bench_gate.py.
  print_metrics_json("bench_resolve");
  return rc;
}
