// Ablation — one big edge box vs. several smaller ones (beyond the
// paper, which fixes a single server).
//
// Total capacity is held constant while the box count varies. Under the
// capacity-normalized congestion model (w_t ∝ S/I_S² — the M/M/1-style
// economy of scale where a faster box drains its queue faster at equal
// utilization), consolidation should win: splitting multiplies each
// unit of work's congestion penalty by the box count. The interesting
// output is HOW MUCH it costs to split — the price a deployment pays
// for placing boxes near users instead of pooling them.
#include <cstdio>

#include "common/strings.hpp"
#include "mec/multiserver.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  constexpr std::size_t kUsers = 48;
  constexpr double kTotalCapacity = 1200.0;

  // Shared user population (distinct graphs per user).
  std::vector<mec::UserApp> users;
  for (std::size_t i = 0; i < kUsers; ++i)
    users.push_back(make_user(PaperScale{250, 1214}, 500 + i));

  std::vector<std::vector<std::string>> rows;
  double best_objective = 0.0;
  std::size_t best_boxes = 0;
  for (const std::size_t boxes : {1u, 2u, 4u, 8u, 16u}) {
    mec::MultiServerSystem system;
    system.device = paper_params();
    system.users = users;
    for (std::size_t s = 0; s < boxes; ++s)
      system.servers.push_back(mec::ServerSpec{
          kTotalCapacity / static_cast<double>(boxes), 20.0, 16.0});

    mec::MultiServerOptions options;
    options.pipeline.propagation = paper_propagation();
    options.rebalance_rounds = 1;
    mec::MultiServerOffloader offloader(options);
    const mec::MultiServerResult result = offloader.solve(system);

    double max_load = 0.0;
    for (const double l : result.server_load)
      max_load = std::max(max_load, l);
    rows.push_back({std::to_string(boxes),
                    format_fixed(kTotalCapacity / boxes, 0),
                    format_fixed(result.total_energy, 1),
                    format_fixed(result.total_time, 1),
                    format_fixed(result.objective(), 1),
                    format_fixed(max_load, 0)});
    if (best_boxes == 0 || result.objective() < best_objective) {
      best_objective = result.objective();
      best_boxes = boxes;
    }
  }

  print_table("Ablation: splitting one edge server into several "
              "(48 users, total capacity fixed at 1200)",
              {"boxes", "capacity each", "E", "T", "E+T",
               "max box load"},
              rows);
  std::printf("best configuration: %zu box(es).\n", best_boxes);
  print_shape_check(
      "consolidation wins under capacity-normalized congestion "
      "(economy of scale)",
      best_boxes == 1);
  return 0;
}

}  // namespace

int main() { return run(); }
