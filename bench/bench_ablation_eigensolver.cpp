// Ablation — eigensolver backend (google-benchmark microbenchmark).
//
// The paper spends "most of the running time … on lots of matrix
// multiplications about the graph spectrum calculation". This bench
// compares the two Fiedler backends (restarted Lanczos vs shifted power
// iteration) across graph sizes, on both the serial and the pool-backed
// SpMV, and reports accuracy (residual) alongside time.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "spectral/fiedler.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;

graph::WeightedGraph connected_graph(std::size_t nodes) {
  graph::NetgenParams p;
  p.nodes = nodes;
  p.edges = nodes * 4;
  p.components = 1;
  p.seed = nodes;
  return graph::netgen_style(p);
}

void BM_FiedlerLanczos(benchmark::State& state) {
  const graph::WeightedGraph g =
      connected_graph(static_cast<std::size_t>(state.range(0)));
  spectral::FiedlerOptions opts;
  double lambda = 0.0;
  for (auto _ : state) {
    const spectral::FiedlerResult r = spectral::fiedler_pair(g, opts);
    lambda = r.value;
    benchmark::DoNotOptimize(lambda);
  }
  (void)lambda;
}
BENCHMARK(BM_FiedlerLanczos)->Arg(100)->Arg(400)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_FiedlerShiftedPower(benchmark::State& state) {
  const graph::WeightedGraph g =
      connected_graph(static_cast<std::size_t>(state.range(0)));
  spectral::FiedlerOptions opts;
  opts.backend = spectral::EigenBackend::kShiftedPower;
  opts.tolerance = 1e-8;
  double lambda = 0.0;
  for (auto _ : state) {
    const spectral::FiedlerResult r = spectral::fiedler_pair(g, opts);
    lambda = r.value;
    benchmark::DoNotOptimize(lambda);
  }
  (void)lambda;
}
// The power method's convergence is gap-limited and slow; cap the
// workload so the ablation finishes quickly — the per-iteration gap to
// Lanczos is visible already at these sizes.
BENCHMARK(BM_FiedlerShiftedPower)->Arg(100)->Arg(250)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_FiedlerLanczosPooled(benchmark::State& state) {
  const graph::WeightedGraph g =
      connected_graph(static_cast<std::size_t>(state.range(0)));
  parallel::ThreadPool pool;
  spectral::FiedlerOptions opts;
  opts.pool = &pool;
  for (auto _ : state) {
    const spectral::FiedlerResult r = spectral::fiedler_pair(g, opts);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_FiedlerLanczosPooled)->Arg(400)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
