// Ablation — Algorithm 2's scalarization.
//
// The paper's greedy minimizes E + T. This bench compares that choice
// against energy-only (minimize E), time-only (minimize T), and the
// no-greedy extremes, evaluating every variant under the full E + T
// objective. Expected: E+T dominates both single-axis greedies, which
// each over-optimize their own axis.
#include <cstdio>

#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

mec::SystemCost run_variant(const mec::MecSystem& system,
                            double energy_weight, double time_weight) {
  mec::PipelineOptions opts;
  opts.backend = mec::CutBackend::kSpectral;
  opts.propagation = paper_propagation();
  opts.greedy.energy_weight = energy_weight;
  opts.greedy.time_weight = time_weight;
  mec::PipelineOffloader offloader(opts);
  return mec::evaluate(system, offloader.solve(system));
}

int run() {
  const mec::MecSystem system =
      make_multiuser_system(/*users=*/64, kMultiuserPoolSize, /*seed=*/3);

  struct Variant {
    const char* name;
    double ew;
    double tw;
  };
  const Variant variants[] = {
      {"E + T (Algorithm 2)", 1.0, 1.0},
      {"energy only", 1.0, 0.0},
      {"time only", 0.0, 1.0},
  };

  std::vector<std::vector<std::string>> rows;
  double best_objective = 0.0;
  double algorithm2_objective = 0.0;
  for (const Variant& variant : variants) {
    const mec::SystemCost cost = run_variant(system, variant.ew, variant.tw);
    rows.push_back({variant.name, format_fixed(cost.total_energy, 2),
                    format_fixed(cost.total_time, 2),
                    format_fixed(cost.objective(), 2)});
    if (best_objective == 0.0 || cost.objective() < best_objective)
      best_objective = cost.objective();
    if (variant.ew == 1.0 && variant.tw == 1.0)
      algorithm2_objective = cost.objective();
  }
  // Extremes for reference.
  const mec::SystemCost all_local =
      mec::evaluate(system, mec::OffloadingScheme::all_local(system));
  const mec::SystemCost all_remote =
      mec::evaluate(system, mec::OffloadingScheme::all_remote(system));
  rows.push_back({"all local (no greedy)",
                  format_fixed(all_local.total_energy, 2),
                  format_fixed(all_local.total_time, 2),
                  format_fixed(all_local.objective(), 2)});
  rows.push_back({"all remote (no greedy)",
                  format_fixed(all_remote.total_energy, 2),
                  format_fixed(all_remote.total_time, 2),
                  format_fixed(all_remote.objective(), 2)});

  print_table("Ablation: Algorithm 2 scalarization (64 users, evaluated "
              "under E + T)",
              {"greedy variant", "E", "T", "E + T"}, rows);
  print_shape_check("Algorithm 2 (E+T) matches the best variant",
                    algorithm2_objective <= best_objective + 1e-9);
  print_shape_check("Algorithm 2 beats both no-greedy extremes",
                    algorithm2_objective <= all_local.objective() + 1e-9 &&
                        algorithm2_objective <=
                            all_remote.objective() + 1e-9);
  return 0;
}

}  // namespace

int main() { return run(); }
