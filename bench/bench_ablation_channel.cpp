// Ablation — wireless fading exposure (beyond the paper's constant b).
//
// The offloading schemes are computed against the analytic constant-
// bandwidth model; the radio then fades (Gilbert–Elliott). Every unit
// of data a scheme pushes across the boundary is exposed to the
// realized rates, so the algorithm that transmits the least (the
// spectral pipeline's cheap cuts) should see the smallest energy
// inflation when the channel turns hostile.
#include <cstdio>

#include "common/strings.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "sim/executor.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  const PaperScale scale{1000, 4912};
  mec::MecSystem system{paper_params(), {make_user(scale, /*seed=*/17)}};

  // One scheme per algorithm, solved against the constant-rate model.
  struct Entry {
    std::string name;
    mec::OffloadingScheme scheme;
    double analytic_energy;
  };
  std::vector<Entry> entries;
  for (const mec::CutBackend backend : paper_backends()) {
    mec::PipelineOptions opts;
    opts.backend = backend;
    opts.propagation = paper_propagation();
    opts.maxflow.strategy = mincut::TerminalStrategy::kBestOfK;
    opts.maxflow.num_pairs = 1;
    mec::PipelineOffloader offloader(opts);
    Entry e;
    e.name = backend_label(backend);
    e.scheme = offloader.solve(system);
    e.analytic_energy = mec::evaluate(system, e.scheme).total_energy;
    entries.push_back(std::move(e));
  }

  // Fading severities: bad-state rate as a fraction of the good rate.
  std::vector<std::vector<std::string>> rows;
  double spectral_inflation = 0.0;
  double kl_inflation = 0.0;
  for (const double bad_fraction : {1.0, 0.5, 0.25, 0.1}) {
    std::vector<std::string> row{format_fixed(bad_fraction, 2)};
    for (const Entry& e : entries) {
      sim::SimOptions opts;
      sim::ChannelModel channel;
      channel.good_rate = system.params.bandwidth;
      channel.bad_rate = system.params.bandwidth * bad_fraction;
      channel.mean_good = 2.0;
      channel.mean_bad = 1.0;
      channel.seed = 99;
      opts.channel = channel;
      // Average the realized energy over a few channel realizations.
      double realized = 0.0;
      constexpr int kRuns = 5;
      for (int r = 0; r < kRuns; ++r) {
        opts.channel->seed = 99 + static_cast<std::uint64_t>(97 * r);
        realized +=
            sim::simulate_scheme(system, e.scheme, opts).total_energy;
      }
      realized /= kRuns;
      const double inflation = realized / e.analytic_energy;
      row.push_back(format_fixed(realized, 1) + " (" +
                    format_fixed(inflation, 3) + "x)");
      if (bad_fraction == 0.1) {
        if (e.name == "our algorithm") spectral_inflation = inflation;
        if (e.name == "Kernighan-Lin") kl_inflation = inflation;
      }
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::string> header{"bad-state rate (xb)"};
  for (const Entry& e : entries) header.push_back(e.name);
  print_table("Ablation: realized energy under Gilbert-Elliott fading "
              "(schemes solved at constant b; cells: energy (inflation))",
              header, rows);
  print_shape_check(
      "the low-transmission spectral scheme inflates no more than "
      "Kernighan-Lin under deep fades",
      spectral_inflation <= kl_inflation + 1e-9);
  return 0;
}

}  // namespace

int main() { return run(); }
