// Figure 6 — local energy consumption vs. user count (graph fixed at
// 1000 functions).
//
// Paper series (normalized): our algorithm {0.03, 0.16, 0.31, 0.43,
// 0.61}, max-flow min-cut {0.05, 0.25, 0.50, 0.75, 1.00}, Kernighan–Lin
// {0.05, 0.25, 0.49, 0.75, 0.99}. Shape: ours grows SUB-linearly while
// the baselines grow ~linearly — cheaper cuts keep more work on the
// server as contention rises.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_user_sweep(/*seed=*/21);
  print_energy_figure(
      "Figure 6: local energy consumption under multi-user conditions",
      "user size", points,
      [](const AlgoResult& r) { return r.local_energy; },
                      /*ours_tolerance=*/0.10,
                      /*compare_against_kl=*/false);
  return 0;
}
