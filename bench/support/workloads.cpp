#include "support/workloads.hpp"

#include <cmath>

#include "common/stopwatch.hpp"

namespace mecoff::bench {

const std::vector<PaperScale>& paper_scales() {
  static const std::vector<PaperScale> kScales{
      {250, 1214}, {500, 2643}, {1000, 4912}, {2000, 9578}, {5000, 40243}};
  return kScales;
}

const std::vector<std::size_t>& paper_user_counts() {
  static const std::vector<std::size_t> kCounts{250, 500, 1000, 2000, 5000};
  return kCounts;
}

graph::NetgenParams netgen_for(PaperScale scale, std::uint64_t seed) {
  graph::NetgenParams p;
  p.nodes = scale.nodes;
  p.edges = scale.edges;
  p.seed = seed;
  // One software component per ~60 functions: an application the size
  // of the paper's workloads is many components, and the per-component
  // two-way cut of the pipeline is only meaningful at that granularity.
  p.components = std::max<std::size_t>(2, scale.nodes / 60);
  // Table I: the compression ratio grows with graph size (84% at 250
  // nodes → 90% at 5000). Larger tightly-coupled clusters at larger
  // scales produce exactly that trend.
  const double growth =
      std::log(static_cast<double>(scale.nodes) / 250.0) / std::log(20.0);
  p.cluster_size = static_cast<std::size_t>(std::lround(6.0 + 6.5 * growth));
  p.min_node_weight = 1.0;
  p.max_node_weight = 50.0;
  p.min_edge_weight = 1.0;
  p.max_edge_weight = 10.0;
  p.heavy_weight_multiplier = 8.0;
  return p;
}

mec::UserApp make_user(PaperScale scale, std::uint64_t seed,
                       std::size_t components_override) {
  graph::NetgenParams params = netgen_for(scale, seed);
  if (components_override > 0) params.components = components_override;
  const graph::NetgenResult generated =
      graph::netgen_style_with_metadata(params);

  // Pin one cluster per component — the UI/sensor functions that anchor
  // a real application to the device. (Scattering pins uniformly would
  // make every cut cross pinned edges and drown the algorithms'
  // differences in a constant term.)
  const std::size_t n = generated.graph.num_nodes();
  std::vector<bool> pinned(n, false);
  std::uint32_t last_component = UINT32_MAX;
  for (std::size_t v = 0; v < n; ++v) {
    if (generated.component_of[v] != last_component) {
      last_component = generated.component_of[v];
      const std::uint32_t ui_cluster = generated.cluster_of[v];
      for (std::size_t u = v;
           u < n && generated.cluster_of[u] == ui_cluster; ++u)
        pinned[u] = true;
    }
  }

  // UI boundary traffic is heavy (raw frames, sensor streams): amplify
  // edges between the pinned cluster and the offloadable functions so
  // the first compute stage is genuinely expensive to offload — that is
  // what makes the device/server boundary PLACEMENT (i.e., the cut)
  // matter.
  constexpr double kUiBoundaryMultiplier = 3.0;
  graph::GraphBuilder amplified;
  for (std::size_t v = 0; v < n; ++v)
    amplified.add_node(generated.graph.node_weight(v));
  for (const graph::Edge& e : generated.graph.edges()) {
    const bool boundary = pinned[e.u] != pinned[e.v];
    amplified.add_edge(e.u, e.v,
                       boundary ? e.weight * kUiBoundaryMultiplier
                                : e.weight);
  }

  mec::UserApp user;
  user.graph = amplified.build();
  user.unoffloadable = pinned;
  return user;
}

mec::SystemParams paper_params() {
  mec::SystemParams p;
  p.mobile_power = 1.0;     // p_c
  p.transmit_power = 16.0;  // p_t  (p_t >> p_c, Section III)
  p.bandwidth = 20.0;       // b
  p.mobile_capacity = 5.0;  // I_c
  // "The resources of edge servers are always limited because of the
  // construction cost": a single user's server slice is modest (not
  // orders of magnitude above the device), so offloading everything is
  // NOT free and the local-vs-remote balance — where cut quality
  // decides — is real. With an over-provisioned server every algorithm
  // would simply offload everything and the figures would coincide.
  p.server_capacity = 50.0;  // I_S (single-user slice)
  p.contention_factor = 0.02; // κ (convex congestion coefficient)
  return p;
}

mec::SystemParams multiuser_params() {
  mec::SystemParams p = paper_params();
  // The shared campus server: ~600 device-equivalents of capacity,
  // split equally among active offloaders. At 250 users everyone's
  // slice is comfortable; by 5000 users the slice is far below a
  // device and most work retreats — the Figs. 6–8 saturation regime.
  p.server_capacity = 25000.0;
  return p;
}

lpa::PropagationConfig paper_propagation() {
  lpa::PropagationConfig config;
  // NETGEN light edges are <= 10, heavy intra-cluster edges ~8x that:
  // the threshold at the boundary merges exactly the coupled clusters.
  config.coupling_threshold = 10.0;
  config.min_update_rate = 0.01;
  config.max_rounds = 20;
  return config;
}

const std::vector<mec::CutBackend>& paper_backends() {
  static const std::vector<mec::CutBackend> kBackends{
      mec::CutBackend::kSpectral, mec::CutBackend::kMaxFlow,
      mec::CutBackend::kKernighanLin};
  return kBackends;
}

std::string backend_label(mec::CutBackend backend) {
  switch (backend) {
    case mec::CutBackend::kSpectral: return "our algorithm";
    case mec::CutBackend::kMaxFlow: return "max-flow min-cut";
    case mec::CutBackend::kKernighanLin: return "Kernighan-Lin";
  }
  return "?";
}

std::vector<AlgoResult> run_paper_algorithms(
    const mec::MecSystem& system, std::size_t identical_user_period,
    parallel::ThreadPool* pool) {
  std::vector<AlgoResult> results;
  for (const mec::CutBackend backend : paper_backends()) {
    mec::PipelineOptions opts;
    opts.backend = backend;
    opts.propagation = paper_propagation();
    opts.identical_user_period = identical_user_period;
    opts.pool = pool;
    // The baseline applies ONE max-flow between a random terminal pair
    // per sub-graph — the textbook way to use Ford-Fulkerson for
    // partitioning when the problem provides no terminals. (The s-t
    // minimum cut is only as good as the terminal choice, which is the
    // baseline's structural handicap vs. the global spectral cut.)
    opts.maxflow.strategy = mincut::TerminalStrategy::kBestOfK;
    opts.maxflow.num_pairs = 1;
    mec::PipelineOffloader offloader(opts);

    Stopwatch timer;
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const double seconds = timer.elapsed_seconds();
    const mec::SystemCost cost = mec::evaluate(system, scheme);

    AlgoResult r;
    r.algorithm = backend_label(backend);
    r.local_energy = cost.local_energy();
    r.transmit_energy = cost.transmit_energy();
    r.total_energy = cost.total_energy;
    r.objective = cost.objective();
    r.solve_seconds = seconds;
    results.push_back(r);
  }
  return results;
}

mec::MecSystem make_multiuser_system(std::size_t users,
                                     std::size_t pool_size,
                                     std::uint64_t seed) {
  const PaperScale scale{1000, 4912};  // "function number of graph to 1000"
  std::vector<mec::UserApp> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i)
    pool.push_back(make_user(scale, seed + i));
  return mec::make_uniform_system(multiuser_params(), pool, users);
}

}  // namespace mecoff::bench
