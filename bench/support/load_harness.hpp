// Shared load driver for the solve service.
//
// bench_serve, bench_soak and `mecoff_cli serve-solve selfcheck=` all
// need the same closed-loop machinery: C client threads replaying a
// request set against a SolveService, classifying every response by
// provenance, checking full-quality placements byte-identical to a
// cold reference, and folding latencies into percentiles. This library
// is that machinery extracted once (ROADMAP item 5 names exactly this
// refactor), so the bench curve, the soak harness and the CLI smoke
// all measure the same thing.
//
// The request pattern is canonical and deterministic: client c's i-th
// request is app (c + i) % apps — the pattern bench_serve committed
// its baseline counters with. Open-loop mode paces each client at a
// fixed rate instead of back-to-back; the watchdog classifies any
// single response slower than `wedge_seconds` as WEDGED, the
// anomaly class chaos soaks must keep at zero (a wedged request came
// back — a hung one would stall the whole run, which CI's timeout
// catches).
//
// THREADING: clients are plain std::threads — external to the
// service's pool, as SolveService's contract requires.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mec/scheme.hpp"
#include "obs/timeline.hpp"
#include "serve/solve_service.hpp"

namespace mecoff::bench {

/// Cumulative tallies at one quiescent segment boundary (see
/// LoadOptions::segments). All counts are since the start of this
/// run_load call, not per-segment deltas — curve consumers difference
/// them if they want rates.
struct SegmentSample {
  std::size_t segment = 0;  ///< 1-based boundary index
  std::size_t requests = 0;
  std::size_t solved = 0;
  std::size_t hits = 0;
  std::size_t coalesced = 0;
  std::size_t shed = 0;
  std::size_t hedged = 0;
  std::size_t deadline_degraded = 0;
  std::size_t degraded = 0;
  double wall_seconds = 0.0;  ///< since run_load start (timing only)
};

struct LoadOptions {
  /// Concurrent client threads.
  std::size_t clients = 4;
  /// Total requests across all clients; client c issues
  /// total/clients (+1 for the first total%clients clients).
  std::size_t total_requests = 100;
  /// Open-loop pacing per client in requests/second; 0 = closed loop
  /// (next request as soon as the previous answers).
  double open_loop_rate_hz = 0.0;
  /// Per-request deadline budget handed to the service; negative = the
  /// service default.
  double deadline_seconds = -1.0;
  /// A response slower than this counts as wedged; <= 0 disables.
  double wedge_seconds = 0.0;
  /// Split every client's share into this many chunks with a full
  /// cross-client barrier after each: at a boundary ALL clients are
  /// quiescent, so cumulative tallies (and registry counters fed only
  /// by this load) are deterministic there — the sampling points that
  /// make a soak phase a reproducible curve, not one point. 1 (the
  /// default) keeps the seed behavior: no barriers, one final sample.
  /// The per-client request pattern is unchanged — clients merely
  /// pause at boundaries.
  std::size_t segments = 1;
  /// Called at each segment boundary (the final one included) by
  /// exactly one thread while all clients are parked. Cheap work only:
  /// every client waits on it.
  std::function<void(const SegmentSample&)> on_segment;
  /// Timeline sampled at each boundary with tick = cumulative requests
  /// (Timeline::sample_now). Deterministic for registry keys fed only
  /// by this load — the harness half of the tick-mode /timez
  /// determinism contract. May be null.
  obs::Timeline* timeline = nullptr;
};

struct LoadOutcome {
  std::size_t requests = 0;   ///< responses received (== issued)
  std::size_t errors = 0;     ///< Result errors (malformed input only)
  std::size_t mismatches = 0; ///< full-quality placement != reference
  std::size_t wedged = 0;     ///< slower than wedge_seconds
  /// Per-provenance response counts (sum == requests).
  std::size_t solved = 0;
  std::size_t hits = 0;
  std::size_t coalesced = 0;
  std::size_t shed = 0;
  std::size_t hedged = 0;
  std::size_t deadline_degraded = 0;
  /// Responses with the degraded flag set (any provenance).
  std::size_t degraded = 0;
  double wall_seconds = 0.0;
  /// All response latencies, sorted ascending.
  std::vector<double> latencies;
  /// One cumulative sample per segment boundary (empty when
  /// LoadOptions::segments == 1 and no on_segment/timeline is wired).
  std::vector<SegmentSample> samples;

  /// Latency percentile over `latencies` (nearest-rank at
  /// q * (n - 1), the same definition bench_serve always printed).
  [[nodiscard]] double percentile(double q) const;
};

/// Drive `service` with options.total_requests requests drawn from
/// `requests` by the canonical (c + i) % apps pattern. `reference[a]`,
/// when present and non-empty, is the expected full-quality placement
/// of app a: every non-degraded response (solved, hit, coalesced,
/// clean hedge) is compared byte-for-byte and counted as a mismatch on
/// any difference. Degraded responses (shed, deadline, fallback cuts)
/// are valid by construction and exempt. Pass an empty `reference` to
/// skip identity checking entirely.
[[nodiscard]] LoadOutcome run_load(
    serve::SolveService& service,
    const std::vector<serve::SolveRequest>& requests,
    const std::vector<std::vector<mec::Placement>>& reference,
    const LoadOptions& options);

}  // namespace mecoff::bench
