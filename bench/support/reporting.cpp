#include "support/reporting.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/strings.hpp"
#include "obs/metrics.hpp"

namespace mecoff::bench {

namespace {

/// "Figure 3: local energy" → "figure_3_local_energy".
std::string slugify(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    else if (!slug.empty() && slug.back() != '_')
      slug.push_back('_');
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

void maybe_write_csv(const std::string& title, const std::string& x_label,
                     const std::vector<std::string>& x_values,
                     const std::vector<Series>& series) {
  const char* dir = std::getenv("MECOFF_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + slugify(title) + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << x_label;
  for (const Series& s : series) out << ',' << s.name;
  out << '\n';
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    out << x_values[i];
    for (const Series& s : series)
      out << ',' << (i < s.values.size()
                         ? format_fixed(s.values[i], 6)
                         : std::string());
    out << '\n';
  }
  std::printf("[csv] wrote %s\n", path.c_str());
}

}  // namespace

double normalize_series(std::vector<Series>& series) {
  double max_value = 0.0;
  for (const Series& s : series)
    for (const double v : s.values) max_value = std::max(max_value, v);
  if (max_value <= 0.0) return 1.0;
  for (Series& s : series)
    for (double& v : s.values) v /= max_value;
  return max_value;
}

void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<std::string>& x_values,
                  const std::vector<Series>& series, int precision) {
  maybe_write_csv(title, x_label, x_values, series);
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-14s", x_label.c_str());
  for (const Series& s : series) std::printf(" | %18s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::printf("%-14s", x_values[i].c_str());
    for (const Series& s : series) {
      const std::string cell =
          i < s.values.size() ? format_fixed(s.values[i], precision) : "-";
      std::printf(" | %18s", cell.c_str());
    }
    std::printf("\n");
  }
}

void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  // Column widths from content.
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    widths[c] = header[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%-*s", c == 0 ? "" : " | ",
                  static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(header);
  for (const auto& row : rows) print_row(row);
}

void print_shape_check(const std::string& what, bool ok) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-WARN", what.c_str());
}

void print_metrics_json(const std::string& title) {
#ifdef MECOFF_OBS_DISABLED
  const std::string json = "{}";
#else
  const std::string json = obs::MetricsRegistry::global().to_json();
#endif
  std::printf("[metrics] %s\n", json.c_str());
  const char* dir = std::getenv("MECOFF_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + slugify(title) + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << json << '\n';
  std::printf("[metrics] wrote %s\n", path.c_str());
}

}  // namespace mecoff::bench
