#include "support/figures.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace mecoff::bench {

namespace {

/// Mean of per-seed results, element-wise over algorithms.
std::vector<AlgoResult> average_runs(
    const std::vector<std::vector<AlgoResult>>& runs) {
  std::vector<AlgoResult> mean = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    for (std::size_t a = 0; a < mean.size(); ++a) {
      mean[a].local_energy += runs[r][a].local_energy;
      mean[a].transmit_energy += runs[r][a].transmit_energy;
      mean[a].total_energy += runs[r][a].total_energy;
      mean[a].objective += runs[r][a].objective;
      mean[a].solve_seconds += runs[r][a].solve_seconds;
    }
  }
  const double inv = 1.0 / static_cast<double>(runs.size());
  for (AlgoResult& a : mean) {
    a.local_energy *= inv;
    a.transmit_energy *= inv;
    a.total_energy *= inv;
    a.objective *= inv;
    a.solve_seconds *= inv;
  }
  return mean;
}

}  // namespace

std::vector<SweepPoint> run_size_sweep(std::uint64_t seed) {
  constexpr std::size_t kSeedsPerPoint = 3;
  std::vector<SweepPoint> points;
  for (const PaperScale scale : paper_scales()) {
    std::vector<std::vector<AlgoResult>> runs;
    for (std::size_t r = 0; r < kSeedsPerPoint; ++r) {
      mec::MecSystem system{paper_params(), {make_user(scale, seed + r)}};
      runs.push_back(run_paper_algorithms(system));
    }
    SweepPoint point;
    point.x = std::to_string(scale.nodes);
    point.algos = average_runs(runs);
    points.push_back(std::move(point));
    std::fprintf(stderr, "  [sweep] graph size %zu done\n", scale.nodes);
  }
  return points;
}

std::vector<SweepPoint> run_user_sweep(std::uint64_t seed) {
  constexpr std::size_t kSeedsPerPoint = 2;
  std::vector<SweepPoint> points;
  for (const std::size_t users : paper_user_counts()) {
    std::vector<std::vector<AlgoResult>> runs;
    for (std::size_t r = 0; r < kSeedsPerPoint; ++r) {
      const mec::MecSystem system = make_multiuser_system(
          users, kMultiuserPoolSize, seed + 16 * r);
      runs.push_back(run_paper_algorithms(system, kMultiuserPoolSize));
    }
    SweepPoint point;
    point.x = std::to_string(users);
    point.algos = average_runs(runs);
    points.push_back(std::move(point));
    std::fprintf(stderr, "  [sweep] %zu users done\n", users);
  }
  return points;
}

void print_energy_figure(const std::string& title,
                         const std::string& x_label,
                         const std::vector<SweepPoint>& points,
                         const MetricFn& metric,
                         double ours_tolerance, bool compare_against_kl) {
  std::vector<Series> series;
  if (!points.empty()) {
    for (const AlgoResult& algo : points.front().algos)
      series.push_back(Series{algo.algorithm, {}});
  }
  std::vector<std::string> xs;
  for (const SweepPoint& point : points) {
    xs.push_back(point.x);
    for (std::size_t a = 0; a < point.algos.size(); ++a)
      series[a].values.push_back(metric(point.algos[a]));
  }
  const double scale = normalize_series(series);
  print_figure(title + " (normalized; scale = " +
                   format_fixed(scale, 2) + ")",
               x_label, xs, series);

  // Shape checks against the paper's qualitative claims.
  bool ours_lowest = true;
  const std::size_t compared = compare_against_kl ? series.size() : 2;
  for (std::size_t i = 0; i < xs.size(); ++i)
    for (std::size_t a = 1; a < compared; ++a)
      if (series[0].values[i] >
          series[a].values[i] * (1.0 + ours_tolerance) + 0.02)
        ours_lowest = false;
  print_shape_check(
      std::string("'our algorithm' at or below ") +
          (compare_against_kl ? "both baselines" : "max-flow min-cut") +
          " at every point (tol " +
          format_fixed(100.0 * ours_tolerance, 0) + "%)",
      ours_lowest);
  if (!compare_against_kl)
    std::printf("[SHAPE-NOTE] Kernighan-Lin's LOCAL energy can undercut "
                "ours here: its poorly-cut components remain stranded on "
                "the server (less local compute, far more transmission "
                "in the companion figure). See EXPERIMENTS.md.\n");

  // Saturation plateaus may dip slightly under seed noise; the paper's
  // claim is the growth trend, not strict pointwise monotonicity.
  bool monotone = true;
  for (const Series& s : series)
    for (std::size_t i = 1; i < s.values.size(); ++i)
      if (s.values[i] < s.values[i - 1] * 0.85 - 0.02) monotone = false;
  print_shape_check("every series grows along the x-axis "
                    "(15% dip allowance)", monotone);
}

}  // namespace mecoff::bench
