// Shared experiment drivers for the figure benches. Figures 3–5 plot
// three metrics of ONE experiment (the single-user graph-size sweep);
// Figures 6–8 plot the same metrics of the multi-user sweep. Each bench
// binary calls the driver and selects its metric, so the three views of
// an experiment can never drift apart.
#pragma once

#include <functional>

#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace mecoff::bench {

struct SweepPoint {
  std::string x;                  ///< x-axis label (graph size / user count)
  std::vector<AlgoResult> algos;  ///< one entry per paper algorithm
};

/// Figs. 3–5: one user, graph sizes from Table I.
[[nodiscard]] std::vector<SweepPoint> run_size_sweep(std::uint64_t seed);

/// Figs. 6–8: graph fixed at 1000 functions, user counts 250…5000.
[[nodiscard]] std::vector<SweepPoint> run_user_sweep(std::uint64_t seed);

using MetricFn = std::function<double(const AlgoResult&)>;

/// Render one paper figure: normalized series per algorithm plus the
/// two shape checks every energy figure shares: "our algorithm" at or
/// below both baselines (within `ours_tolerance`, a relative slack for
/// metrics where the model trades axes differently than the paper's —
/// see EXPERIMENTS.md), and growth along the x-axis (within a small
/// relative dip allowance for saturation plateaus).
void print_energy_figure(const std::string& title,
                         const std::string& x_label,
                         const std::vector<SweepPoint>& points,
                         const MetricFn& metric,
                         double ours_tolerance = 0.05,
                         bool compare_against_kl = true);

}  // namespace mecoff::bench
