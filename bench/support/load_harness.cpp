#include "support/load_harness.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_annotations.hpp"

namespace mecoff::bench {

double LoadOutcome::percentile(double q) const {
  if (latencies.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1));
  return latencies[rank];
}

namespace {

/// Per-client tallies, merged after join (no shared-state contention on
/// the measured path).
struct ClientTally {
  LoadOutcome counts;  ///< latencies unsorted here; merged later
};

void classify(const serve::SolveResponse& response, ClientTally& tally) {
  switch (response.source) {
    case serve::SolveSource::kSolved: ++tally.counts.solved; break;
    case serve::SolveSource::kCacheHit: ++tally.counts.hits; break;
    case serve::SolveSource::kCoalesced: ++tally.counts.coalesced; break;
    case serve::SolveSource::kShed: ++tally.counts.shed; break;
    case serve::SolveSource::kHedged: ++tally.counts.hedged; break;
    case serve::SolveSource::kDeadlineDegraded:
      ++tally.counts.deadline_degraded;
      break;
  }
  if (response.degraded) ++tally.counts.degraded;
}

/// Generation-counted rendezvous: every client calls arrive_and_wait at
/// a segment boundary; the LAST arriver runs the aggregation callback
/// while everyone else is parked, then releases the generation. The
/// barrier mutex is what makes the aggregate read safe: each client's
/// tally writes happen-before its mutex acquire, so the last arriver
/// (holding the same mutex) observes all of them.
class SegmentBarrier {
 public:
  explicit SegmentBarrier(std::size_t parties) : parties_(parties) {}

  template <typename Fn>
  void arrive_and_wait(Fn&& on_last) EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      on_last();
      cv_.notify_all();
      return;
    }
    while (generation_ == generation) cv_.wait(mutex_);
  }

 private:
  const std::size_t parties_;
  Mutex mutex_;
  CondVar cv_;
  std::size_t arrived_ GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
};

/// Cumulative tallies across all clients, folded into a SegmentSample.
/// Called only at quiescent points (inside the barrier, or after join),
/// which is what makes the numbers deterministic for a deterministic
/// request pattern.
SegmentSample fold_sample(const std::vector<ClientTally>& tallies,
                          std::size_t segment, double wall_seconds) {
  SegmentSample sample;
  sample.segment = segment;
  sample.wall_seconds = wall_seconds;
  for (const ClientTally& tally : tallies) {
    const LoadOutcome& c = tally.counts;
    sample.requests += c.requests;
    sample.solved += c.solved;
    sample.hits += c.hits;
    sample.coalesced += c.coalesced;
    sample.shed += c.shed;
    sample.hedged += c.hedged;
    sample.deadline_degraded += c.deadline_degraded;
    sample.degraded += c.degraded;
  }
  return sample;
}

}  // namespace

LoadOutcome run_load(serve::SolveService& service,
                     const std::vector<serve::SolveRequest>& requests,
                     const std::vector<std::vector<mec::Placement>>& reference,
                     const LoadOptions& options) {
  MECOFF_EXPECTS(!requests.empty());
  MECOFF_EXPECTS(options.clients > 0);
  MECOFF_EXPECTS(options.segments > 0);
  const std::size_t apps = requests.size();
  const std::size_t clients = options.clients;
  const std::size_t total = options.total_requests;
  const std::size_t segments = options.segments;

  std::vector<ClientTally> tallies(clients);
  std::vector<SegmentSample> samples;
  samples.reserve(segments);
  SegmentBarrier barrier(clients);
  const Stopwatch wall;
  // Shared by the barrier's last arrivers only — each boundary has
  // exactly one, and successive boundaries are ordered by the barrier
  // mutex, so no extra synchronisation is needed here.
  const auto take_sample = [&] {
    SegmentSample sample =
        fold_sample(tallies, samples.size() + 1, wall.elapsed_seconds());
    if (options.timeline != nullptr)
      options.timeline->sample_now(sample.requests);
    if (options.on_segment) options.on_segment(sample);
    samples.push_back(sample);
  };
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      const std::size_t share =
          total / clients + (c < total % clients ? 1 : 0);
      threads.emplace_back([&, c, share] {
        ClientTally& tally = tallies[c];
        tally.counts.latencies.reserve(share);
        const Stopwatch pace;
        // The client's share is split at share * seg / segments — the
        // canonical (c + i) % apps request order is untouched; clients
        // merely rendezvous between chunks. Clients whose share rounds
        // to an empty chunk still arrive at every barrier (the barrier
        // counts threads, not requests).
        for (std::size_t seg = 1; seg <= segments; ++seg) {
          const std::size_t begin = share * (seg - 1) / segments;
          const std::size_t end = share * seg / segments;
          for (std::size_t i = begin; i < end; ++i) {
            if (options.open_loop_rate_hz > 0.0) {
              // Open loop: request i fires at i / rate on this client's
              // clock regardless of how long earlier requests took.
              const double due =
                  static_cast<double>(i) / options.open_loop_rate_hz;
              const double now = pace.elapsed_seconds();
              if (due > now)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(due - now));
            }
            const std::size_t which = (c + i) % apps;
            serve::SolveRequest request = requests[which];
            if (options.deadline_seconds >= 0.0)
              request.deadline_seconds = options.deadline_seconds;
            const Result<serve::SolveResponse> r = service.solve(request);
            ++tally.counts.requests;
            if (!r.ok()) {
              ++tally.counts.errors;
              continue;
            }
            const serve::SolveResponse& response = r.value();
            classify(response, tally);
            tally.counts.latencies.push_back(response.latency_seconds);
            if (options.wedge_seconds > 0.0 &&
                response.latency_seconds > options.wedge_seconds)
              ++tally.counts.wedged;
            // Full-quality responses must be byte-identical to the cold
            // reference; degraded ones are valid-by-construction
            // schemes the checker exempts.
            if (!response.degraded && which < reference.size() &&
                !reference[which].empty() &&
                response.placement != reference[which])
              ++tally.counts.mismatches;
          }
          // Barriers only matter for intermediate boundaries; with
          // segments == 1 the loop body runs once and the single
          // "boundary" is the post-join final sample below — no barrier
          // overhead on the seed path.
          if (seg < segments) barrier.arrive_and_wait(take_sample);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // Final boundary: all clients joined, so the fold is single-threaded.
  // Emitted only when somebody asked for curves — the seed callers
  // (segments == 1, no sinks) see identical behavior to before.
  if (segments > 1 || options.on_segment || options.timeline != nullptr)
    take_sample();

  LoadOutcome out;
  out.wall_seconds = wall.elapsed_seconds();
  for (const ClientTally& tally : tallies) {
    const LoadOutcome& c = tally.counts;
    out.requests += c.requests;
    out.errors += c.errors;
    out.mismatches += c.mismatches;
    out.wedged += c.wedged;
    out.solved += c.solved;
    out.hits += c.hits;
    out.coalesced += c.coalesced;
    out.shed += c.shed;
    out.hedged += c.hedged;
    out.deadline_degraded += c.deadline_degraded;
    out.degraded += c.degraded;
    out.latencies.insert(out.latencies.end(), c.latencies.begin(),
                         c.latencies.end());
  }
  std::sort(out.latencies.begin(), out.latencies.end());
  out.samples = std::move(samples);
  return out;
}

}  // namespace mecoff::bench
