#include "support/load_harness.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"

namespace mecoff::bench {

double LoadOutcome::percentile(double q) const {
  if (latencies.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1));
  return latencies[rank];
}

namespace {

/// Per-client tallies, merged after join (no shared-state contention on
/// the measured path).
struct ClientTally {
  LoadOutcome counts;  ///< latencies unsorted here; merged later
};

void classify(const serve::SolveResponse& response, ClientTally& tally) {
  switch (response.source) {
    case serve::SolveSource::kSolved: ++tally.counts.solved; break;
    case serve::SolveSource::kCacheHit: ++tally.counts.hits; break;
    case serve::SolveSource::kCoalesced: ++tally.counts.coalesced; break;
    case serve::SolveSource::kShed: ++tally.counts.shed; break;
    case serve::SolveSource::kHedged: ++tally.counts.hedged; break;
    case serve::SolveSource::kDeadlineDegraded:
      ++tally.counts.deadline_degraded;
      break;
  }
  if (response.degraded) ++tally.counts.degraded;
}

}  // namespace

LoadOutcome run_load(serve::SolveService& service,
                     const std::vector<serve::SolveRequest>& requests,
                     const std::vector<std::vector<mec::Placement>>& reference,
                     const LoadOptions& options) {
  MECOFF_EXPECTS(!requests.empty());
  MECOFF_EXPECTS(options.clients > 0);
  const std::size_t apps = requests.size();
  const std::size_t clients = options.clients;
  const std::size_t total = options.total_requests;

  std::vector<ClientTally> tallies(clients);
  const Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      const std::size_t share =
          total / clients + (c < total % clients ? 1 : 0);
      threads.emplace_back([&, c, share] {
        ClientTally& tally = tallies[c];
        tally.counts.latencies.reserve(share);
        const Stopwatch pace;
        for (std::size_t i = 0; i < share; ++i) {
          if (options.open_loop_rate_hz > 0.0) {
            // Open loop: request i fires at i / rate on this client's
            // clock regardless of how long earlier requests took.
            const double due =
                static_cast<double>(i) / options.open_loop_rate_hz;
            const double now = pace.elapsed_seconds();
            if (due > now)
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(due - now));
          }
          const std::size_t which = (c + i) % apps;
          serve::SolveRequest request = requests[which];
          if (options.deadline_seconds >= 0.0)
            request.deadline_seconds = options.deadline_seconds;
          const Result<serve::SolveResponse> r = service.solve(request);
          ++tally.counts.requests;
          if (!r.ok()) {
            ++tally.counts.errors;
            continue;
          }
          const serve::SolveResponse& response = r.value();
          classify(response, tally);
          tally.counts.latencies.push_back(response.latency_seconds);
          if (options.wedge_seconds > 0.0 &&
              response.latency_seconds > options.wedge_seconds)
            ++tally.counts.wedged;
          // Full-quality responses must be byte-identical to the cold
          // reference; degraded ones are valid-by-construction schemes
          // the checker exempts.
          if (!response.degraded && which < reference.size() &&
              !reference[which].empty() &&
              response.placement != reference[which])
            ++tally.counts.mismatches;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  LoadOutcome out;
  out.wall_seconds = wall.elapsed_seconds();
  for (const ClientTally& tally : tallies) {
    const LoadOutcome& c = tally.counts;
    out.requests += c.requests;
    out.errors += c.errors;
    out.mismatches += c.mismatches;
    out.wedged += c.wedged;
    out.solved += c.solved;
    out.hits += c.hits;
    out.coalesced += c.coalesced;
    out.shed += c.shed;
    out.hedged += c.hedged;
    out.deadline_degraded += c.deadline_degraded;
    out.degraded += c.degraded;
    out.latencies.insert(out.latencies.end(), c.latencies.begin(),
                         c.latencies.end());
  }
  std::sort(out.latencies.begin(), out.latencies.end());
  return out;
}

}  // namespace mecoff::bench
