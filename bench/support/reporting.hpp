// Table/series printers producing the paper's reporting format:
// per-figure series normalized to the global maximum across algorithms
// (the paper's y-axes are "normalized", with the worst algorithm at the
// largest scale pinned to 1.00).
#pragma once

#include <string>
#include <vector>

namespace mecoff::bench {

/// A named series over a shared x-axis.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Divide every value in every series by the global maximum (no-op when
/// the maximum is 0). Returns the scale used.
double normalize_series(std::vector<Series>& series);

/// Print a figure-style table:
///   <title>
///   x-label      | series1 | series2 | ...
///   <x[0]>       |  0.012  |  0.034  | ...
/// When the environment variable MECOFF_BENCH_CSV_DIR names a writable
/// directory, the same data is also written there as
/// <slugified-title>.csv for plotting.
void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<std::string>& x_values,
                  const std::vector<Series>& series, int precision = 3);

/// Print a plain table with left-aligned first column.
void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Shape-check helper used in every figure bench's epilogue: prints
/// PASS/WARN lines such as "ours <= baselines at every point".
void print_shape_check(const std::string& what, bool ok);

/// Dump the global obs::MetricsRegistry as a single JSON line
/// ("[metrics] {...}") so bench output stays machine-greppable. When
/// MECOFF_BENCH_CSV_DIR is set, also writes <slug>.metrics.json there.
/// No-op payload ("{}") when built with MECOFF_OBS_DISABLED.
void print_metrics_json(const std::string& title);

}  // namespace mecoff::bench
