// Shared workload builders and experiment drivers for the paper-figure
// benches. Every bench binary reproduces one table/figure; this library
// holds the common pieces so the figures stay mutually consistent:
// identical NETGEN parameters, identical system parameters, identical
// pipeline configuration — only the metric reported differs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "lpa/propagation.hpp"
#include "mec/costs.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::bench {

/// The paper's Table I workload scale: (function number, edge number).
struct PaperScale {
  std::size_t nodes;
  std::size_t edges;
};

/// {250/1214, 500/2643, 1000/4912, 2000/9578, 5000/40243}.
[[nodiscard]] const std::vector<PaperScale>& paper_scales();

/// The multi-user x-axis of Figs. 6–8: {250, 500, 1000, 2000, 5000}.
[[nodiscard]] const std::vector<std::size_t>& paper_user_counts();

/// NETGEN parameters for a paper-scale graph. cluster_size grows with n
/// so the compression ratio increases with graph size as in Table I.
[[nodiscard]] graph::NetgenParams netgen_for(PaperScale scale,
                                             std::uint64_t seed);

/// A user application at the given scale: NETGEN graph with one pinned
/// UI cluster per software component and amplified UI-boundary traffic.
/// `components_override` replaces the default granularity (used by the
/// Fig. 9 runtime study, whose compressed sub-graphs must be large
/// enough for the eigensolver to be the measured cost — the paper's
/// Table I granularity of a handful of components per graph).
[[nodiscard]] mec::UserApp make_user(PaperScale scale, std::uint64_t seed,
                                     std::size_t components_override = 0);

/// System parameters for the single-user figures (3–5, 9) and the
/// ablations: a modest per-user server slice.
[[nodiscard]] mec::SystemParams paper_params();

/// System parameters for the multi-user figures (6–8): one big shared
/// server whose equal-share slices shrink as users grow.
[[nodiscard]] mec::SystemParams multiuser_params();

/// LPA configuration shared by all figure benches: the coupling
/// threshold sits at the NETGEN light/heavy edge-weight boundary.
[[nodiscard]] lpa::PropagationConfig paper_propagation();

/// The three algorithms of the evaluation, in the paper's order.
[[nodiscard]] const std::vector<mec::CutBackend>& paper_backends();
[[nodiscard]] std::string backend_label(mec::CutBackend backend);

/// One algorithm's results on one workload point.
struct AlgoResult {
  std::string algorithm;
  double local_energy = 0.0;     ///< Σ e_c (Figs. 3, 6)
  double transmit_energy = 0.0;  ///< Σ e_t (Figs. 4, 7)
  double total_energy = 0.0;     ///< E (Figs. 5, 8)
  double objective = 0.0;        ///< E + T
  double solve_seconds = 0.0;    ///< wall clock of solve() (Fig. 9)
};

/// Run the three pipeline offloaders on `system` and evaluate each
/// scheme. `identical_user_period` and `pool` forward to the pipeline.
[[nodiscard]] std::vector<AlgoResult> run_paper_algorithms(
    const mec::MecSystem& system, std::size_t identical_user_period = 0,
    parallel::ThreadPool* pool = nullptr);

/// Build the Figs. 6–8 multi-user system: `users` users cycling over
/// `pool_size` distinct 1000-node graphs.
[[nodiscard]] mec::MecSystem make_multiuser_system(std::size_t users,
                                                   std::size_t pool_size,
                                                   std::uint64_t seed);

/// Size of the prototype pool used by make_multiuser_system.
inline constexpr std::size_t kMultiuserPoolSize = 4;

}  // namespace mecoff::bench
