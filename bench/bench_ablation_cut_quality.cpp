// Ablation — cut quality of the spectral relaxation.
//
// The paper's Theorem 1 treats the Fiedler pair as "the" minimum cut;
// in truth the spectral split is a relaxation. This bench quantifies
// the gap on graphs small enough for the exact Stoer–Wagner oracle:
// sign split vs sweep split vs exact optimum vs the max-flow baseline.
#include <cstdio>

#include "common/strings.hpp"
#include "graph/generators.hpp"
#include "kl/fiduccia_mattheyses.hpp"
#include "kl/multilevel.hpp"
#include "mincut/bipartitioner.hpp"
#include "mincut/stoer_wagner.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/splitter.hpp"
#include "support/reporting.hpp"
#include "support/workloads.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

int run() {
  std::vector<std::vector<std::string>> rows;
  double worst_sweep_ratio = 0.0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
    graph::NetgenParams p;
    p.nodes = 60;
    p.edges = 240;
    p.components = 1;
    p.seed = seed;
    const graph::WeightedGraph g = graph::netgen_style(p);

    const double exact = mincut::stoer_wagner(g).cut_weight;
    const spectral::FiedlerResult fiedler = spectral::fiedler_pair(g);
    const double sign = spectral::sign_split(g, fiedler.vector).cut_weight;
    const double sweep = spectral::sweep_split(g, fiedler.vector).cut_weight;
    mincut::MaxFlowCutOptions mf_opts;
    mf_opts.strategy = mincut::TerminalStrategy::kBestOfK;
    const double maxflow =
        mincut::MaxFlowBipartitioner(mf_opts).bipartition(g).cut_weight;
    const double fm = kl::FmBipartitioner{}.bipartition(g).cut_weight;
    const double ml =
        kl::MultilevelBipartitioner{}.bipartition(g).cut_weight;

    const double sweep_ratio = exact > 0 ? sweep / exact : 1.0;
    worst_sweep_ratio = std::max(worst_sweep_ratio, sweep_ratio);
    rows.push_back({"seed " + std::to_string(seed), format_fixed(exact, 2),
                    format_fixed(sign, 2), format_fixed(sweep, 2),
                    format_fixed(maxflow, 2), format_fixed(fm, 2),
                    format_fixed(ml, 2),
                    format_fixed(sweep_ratio, 2) + "x"});
  }
  print_table("Ablation: spectral cut vs exact minimum (60-node graphs)",
              {"instance", "Stoer-Wagner (exact)", "spectral sign",
               "spectral sweep", "max-flow best-of-8", "FM (balanced)", "multilevel",
               "sweep/exact"},
              rows);
  print_shape_check("sweep split within 3x of the exact minimum cut",
                    worst_sweep_ratio <= 3.0);
  return 0;
}

}  // namespace

int main() { return run(); }
