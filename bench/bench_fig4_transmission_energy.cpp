// Figure 4 — transmission energy consumption vs. graph size (single
// user).
//
// Paper series (normalized): our algorithm {0.06, 0.13, 0.14, 0.45,
// 0.85}, max-flow min-cut {0.07, 0.13, 0.18, 0.53, 0.97}, Kernighan–Lin
// {0.08, 0.15, 0.19, 0.58, 1.00}. Shape: same growth trend as Fig. 3;
// ours lowest at every point.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_size_sweep(/*seed=*/7);
  print_energy_figure("Figure 4: transmission energy consumption",
                      "graph size", points,
                      [](const AlgoResult& r) { return r.transmit_energy; });
  return 0;
}
