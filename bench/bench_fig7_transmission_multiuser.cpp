// Figure 7 — transmission energy consumption vs. user count (graph
// fixed at 1000 functions).
//
// Paper series (normalized): our algorithm {0.02, 0.12, 0.26, 0.46,
// 0.70}, max-flow min-cut {0.03, 0.16, 0.34, 0.60, 0.89}, Kernighan–Lin
// {0.03, 0.18, 0.41, 0.69, 1.00}. Shape: grows with users; ours lowest
// at every point.
#include "support/figures.hpp"

int main() {
  using namespace mecoff::bench;
  const std::vector<SweepPoint> points = run_user_sweep(/*seed=*/21);
  print_energy_figure(
      "Figure 7: transmission energy consumption under multi-user "
      "conditions",
      "user size", points,
      [](const AlgoResult& r) { return r.transmit_energy; });
  return 0;
}
