// Figure 9 — execution time vs. graph size, four series:
//   our algorithm without Spark   (spectral pipeline, naive dense
//                                  power-iteration eigensolver — the
//                                  paper's "lots of matrix
//                                  multiplications" bottleneck)
//   max-flow min-cut              (baseline)
//   Kernighan–Lin                 (baseline)
//   our algorithm with Spark      (same dense eigensolver, matvec rows
//                                  distributed on the mini-Spark
//                                  thread-pool engine)
//
// Paper shape: the spectral pipeline without the parallel engine is
// markedly slower than the baselines at large sizes; with the engine it
// is "close to the other two algorithms".
//
// A fifth bonus series shows this repo's production eigensolver
// (sparse restarted Lanczos): the Fig. 9 bottleneck is an artifact of
// the naive dense solver and disappears entirely with a proper sparse
// method — worth knowing before anyone deploys the paper's Spark setup.
//
// Note: this container may expose a single hardware thread, which
// bounds the attainable engine speed-up; the code path exercised is the
// real parallel one regardless, and the bench prints the thread count.
#include <cstdio>
#include <thread>

#include "common/stopwatch.hpp"
#include "support/figures.hpp"

namespace {

using namespace mecoff;
using namespace mecoff::bench;

double time_solve(const mec::MecSystem& system, mec::CutBackend backend,
                  spectral::EigenBackend eigen, parallel::ThreadPool* pool) {
  mec::PipelineOptions opts;
  opts.backend = backend;
  opts.propagation = paper_propagation();
  opts.pool = pool;
  opts.spectral.fiedler.backend = eigen;
  opts.maxflow.strategy = mincut::TerminalStrategy::kBestOfK;
  opts.maxflow.num_pairs = 1;
  mec::PipelineOffloader offloader(opts);
  Stopwatch timer;
  (void)offloader.solve(system);
  return timer.elapsed_seconds();
}

int run() {
  parallel::ThreadPool pool;
  const unsigned threads = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", threads);

  std::vector<std::string> xs;
  std::vector<Series> series{{"ours w/o spark (dense eigensolver)", {}},
                             {"max-flow min-cut", {}},
                             {"Kernighan-Lin", {}},
                             {"ours w/ spark (dense eigensolver)", {}},
                             {"ours, sparse Lanczos (bonus)", {}}};

  for (const PaperScale scale : paper_scales()) {
    // Table I granularity (4 components per graph): the compressed
    // sub-graphs are then hundreds of super-nodes at the top scale, so
    // the eigensolver dominates exactly as in the paper's Fig. 9.
    mec::MecSystem system{paper_params(),
                          {make_user(scale, /*seed=*/9,
                                     /*components_override=*/4)}};
    xs.push_back(std::to_string(scale.nodes));
    series[0].values.push_back(
        time_solve(system, mec::CutBackend::kSpectral,
                   spectral::EigenBackend::kDensePowerNaive, nullptr));
    series[1].values.push_back(
        time_solve(system, mec::CutBackend::kMaxFlow,
                   spectral::EigenBackend::kLanczos, nullptr));
    series[2].values.push_back(
        time_solve(system, mec::CutBackend::kKernighanLin,
                   spectral::EigenBackend::kLanczos, nullptr));
    series[3].values.push_back(
        time_solve(system, mec::CutBackend::kSpectral,
                   spectral::EigenBackend::kDensePowerNaive, &pool));
    series[4].values.push_back(
        time_solve(system, mec::CutBackend::kSpectral,
                   spectral::EigenBackend::kLanczos, nullptr));
    std::fprintf(stderr, "  [fig9] graph size %zu done\n", scale.nodes);
  }

  print_figure("Figure 9: execution time (seconds)", "graph size", xs,
               series, 4);

  const std::size_t last = xs.size() - 1;
  print_shape_check(
      "spectral with the naive dense eigensolver is the slowest series "
      "at the largest size",
      series[0].values[last] >= series[1].values[last] &&
          series[0].values[last] >= series[2].values[last]);
  if (threads > 1) {
    print_shape_check(
        "the parallel engine brings the spectral pipeline closer to the "
        "baselines",
        series[3].values[last] < series[0].values[last]);
  } else {
    std::printf("[SHAPE-NOTE] single hardware thread: engine speed-up "
                "not measurable here; series 4 only checks the parallel "
                "code path.\n");
  }
  print_shape_check(
      "the sparse Lanczos solver removes the Fig. 9 bottleneck "
      "entirely",
      series[4].values[last] <= 0.25 * series[0].values[last]);
  return 0;
}

}  // namespace

int main() { return run(); }
