// Multi-user campus scenario: one edge server, a crowd of users running
// a mix of applications (AR game, video analytics, face recognition).
//
// Demonstrates: the COPMECS multi-user coordination — as the crowd
// grows, the shared server saturates and the greedy pulls work back to
// the devices; the spectral pipeline degrades most gracefully. Also
// cross-checks the analytic waiting-time model against the
// discrete-event FIFO server.
//
// Run:  ./multi_user_campus [users=<n>]
#include <cstdio>

#include "appmodel/synthetic_apps.hpp"
#include "common/config.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "sim/executor.hpp"

int main(int argc, char** argv) {
  using namespace mecoff;

  const Config cfg = Config::from_args(argc, argv);
  const std::size_t max_users =
      static_cast<std::size_t>(cfg.get_int("users", 96));

  // Application mix: three archetypes from the appmodel library.
  std::vector<mec::UserApp> mix;
  for (const appmodel::Application& app :
       {appmodel::make_ar_game_app(), appmodel::make_video_analytics_app(),
        appmodel::make_face_recognition_app()}) {
    mec::UserApp user;
    user.graph = app.to_graph();
    user.unoffloadable = app.unoffloadable_mask();
    user.components = app.component_ids();
    mix.push_back(std::move(user));
  }

  mec::SystemParams params;
  params.mobile_capacity = 4.0;
  params.server_capacity = 300.0;  // modest campus edge box
  params.bandwidth = 30.0;
  params.contention_factor = 1.0;

  std::printf("%-8s | %-10s | %-12s | %-10s | %-12s | %s\n", "users",
              "offloaded", "E (analytic)", "T (analytic)", "avg DES wait",
              "greedy moves");
  for (std::size_t users = 12; users <= max_users; users *= 2) {
    const mec::MecSystem system =
        mec::make_uniform_system(params, mix, users);

    mec::PipelineOptions options;
    options.backend = mec::CutBackend::kSpectral;
    options.propagation.coupling_threshold = 50.0;
    options.identical_user_period = mix.size();
    mec::PipelineOffloader offloader(options);
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const mec::SystemCost cost = mec::evaluate(system, scheme);
    const sim::SimReport sim = sim::simulate_scheme(system, scheme);

    std::size_t offloaded = 0;
    std::size_t total = 0;
    for (std::size_t u = 0; u < users; ++u) {
      offloaded += scheme.remote_count(u);
      total += system.users[u].graph.num_nodes();
    }
    double wait = 0.0;
    for (const sim::UserOutcome& outcome : sim.users)
      wait += outcome.server_wait;

    std::printf("%-8zu | %4zu/%-5zu | %12.1f | %10.1f | %12.3f | %zu\n",
                users, offloaded, total, cost.total_energy, cost.total_time,
                wait / static_cast<double>(users),
                offloader.last_stats().greedy_moves);
  }
  std::printf("\nNote: offloaded share shrinks as the crowd grows — the "
              "shared server saturates and Algorithm 2 pulls parts back "
              "onto the devices.\n");
  return 0;
}
