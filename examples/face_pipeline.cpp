// Face-recognition pipeline — the workload class the paper's
// introduction motivates ("face recognition, natural language
// processing, interactive games, virtual reality").
//
// Demonstrates: the appmodel layer (functions, components, pinned
// sensors), all three cut backends side by side, and the discrete-event
// simulator validating the analytic bill.
//
// Run:  ./face_pipeline
#include <cstdio>

#include "appmodel/synthetic_apps.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace mecoff;

  const appmodel::Application app = appmodel::make_face_recognition_app();
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();

  mec::SystemParams params;
  params.mobile_capacity = 4.0;   // phone much slower than the server
  params.server_capacity = 400.0;
  params.bandwidth = 30.0;
  mec::MecSystem system{params, {user}};

  std::printf("application '%s': %zu functions, %zu exchanges\n\n",
              app.name().c_str(), app.num_functions(),
              app.exchanges().size());

  for (const mec::CutBackend backend :
       {mec::CutBackend::kSpectral, mec::CutBackend::kMaxFlow,
        mec::CutBackend::kKernighanLin}) {
    mec::PipelineOptions options;
    options.backend = backend;
    options.propagation.coupling_threshold = 50.0;
    mec::PipelineOffloader offloader(options);
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const mec::SystemCost cost = mec::evaluate(system, scheme);
    const sim::SimReport sim = sim::simulate_scheme(system, scheme);

    std::size_t offloaded = scheme.remote_count(0);
    std::printf("[%s] offloaded %zu/%zu functions | E = %.2f  T = %.2f  "
                "E+T = %.2f | DES energy = %.2f, makespan = %.2f\n",
                offloader.name().c_str(), offloaded, app.num_functions(),
                cost.total_energy, cost.total_time, cost.objective(),
                sim.total_energy, sim.makespan);
  }

  // Detail view for the spectral scheme.
  mec::PipelineOptions options;
  options.propagation.coupling_threshold = 50.0;
  mec::PipelineOffloader offloader(options);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  std::printf("\nspectral placement:\n");
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    const appmodel::FunctionInfo& fn = app.function(i);
    std::printf("  %-18s [%-8s] w=%-6.0f -> %s%s\n", fn.name.c_str(),
                fn.component.c_str(), fn.computation,
                scheme.placement[0][i] == mec::Placement::kLocal
                    ? "device"
                    : "server",
                fn.unoffloadable ? " (pinned)" : "");
  }
  return 0;
}
