// App-DSL front end — the "Soot substitute" end to end.
//
// Reads an application description (from a file given as argv[1], or a
// built-in sensor-fusion demo), extracts the function data flow graph,
// runs the full pipeline, and prints the per-function placement, the
// compression statistics, and a Graphviz DOT of the partitioned graph.
//
// Run:  ./appdsl_offload [path/to/app.dsl]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "appmodel/dsl_parser.hpp"
#include "graph/io.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace {

constexpr const char* kDemoApp = R"(# Sensor-fusion navigation app
app SensorNav
component io
  function gps_read      compute=4   unoffloadable
  function imu_read      compute=3   unoffloadable
  function display       compute=6   unoffloadable
component fusion
  function calibrate     compute=40
  function kalman_update compute=180
  function kalman_smooth compute=160
component planning
  function map_match     compute=220
  function route_plan    compute=310
  function eta_predict   compute=90
call gps_read calibrate     data=4
call imu_read calibrate     data=6
call calibrate kalman_update data=12
call kalman_update kalman_smooth data=85
call kalman_smooth map_match data=10
call map_match route_plan   data=70
call route_plan eta_predict data=8
call eta_predict display    data=2
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mecoff;

  std::string text = kDemoApp;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  const Result<appmodel::Application> parsed = appmodel::parse_app_dsl(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "DSL error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const appmodel::Application& app = parsed.value();

  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();

  mec::SystemParams params;
  params.mobile_capacity = 4.0;
  mec::MecSystem system{params, {user}};

  mec::PipelineOptions options;
  options.propagation.coupling_threshold = 50.0;
  mec::PipelineOffloader offloader(options);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  const mec::SystemCost cost = mec::evaluate(system, scheme);

  std::printf("app '%s' — placement:\n", app.name().c_str());
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    const appmodel::FunctionInfo& fn = app.function(i);
    std::printf("  %-16s -> %s%s\n", fn.name.c_str(),
                scheme.placement[0][i] == mec::Placement::kLocal ? "device"
                                                                 : "server",
                fn.unoffloadable ? " (pinned)" : "");
  }

  const auto& stats = offloader.last_stats();
  std::printf("\ncompression: %zu -> %zu functions (%.0f%% reduction), "
              "%zu parts, %zu greedy moves\n",
              stats.compression.original_nodes,
              stats.compression.compressed_nodes,
              100.0 * stats.compression.node_reduction(), stats.num_parts,
              stats.greedy_moves);
  std::printf("bill: E = %.2f, T = %.2f, E+T = %.2f\n", cost.total_energy,
              cost.total_time, cost.objective());

  // DOT export with the partition colored (green local / red remote).
  std::vector<std::uint8_t> side(user.graph.num_nodes(), 0);
  for (std::size_t i = 0; i < side.size(); ++i)
    side[i] = scheme.placement[0][i] == mec::Placement::kRemote ? 1 : 0;
  std::printf("\nGraphviz DOT of the partitioned graph:\n%s",
              graph::to_dot(user.graph, side).c_str());
  return 0;
}
