// Quickstart: the paper's pipeline in ~40 lines of user code.
//
// Build a small function data flow graph by hand (the Fig. 1 example of
// the paper, extended with weights), run the spectral offloader, and
// print where each function lands plus the energy/time bill.
//
// Run:  ./quickstart
#include <cstdio>

#include "mec/costs.hpp"
#include "mec/offloader.hpp"

int main() {
  using namespace mecoff;

  // Fig. 1 of the paper: f1 calls f2 and f3; f2 calls f4 and f5; data
  // sizes annotate the edges. f1 drives the UI, so it is pinned.
  graph::GraphBuilder builder;
  const auto f1 = builder.add_node(5.0);    // orchestration, light
  const auto f2 = builder.add_node(80.0);   // heavy compute
  const auto f3 = builder.add_node(60.0);   // heavy compute
  const auto f4 = builder.add_node(120.0);  // heavy compute
  const auto f5 = builder.add_node(90.0);   // heavy compute
  builder.add_edge(f1, f2, 10.0);  // |a| = 10
  builder.add_edge(f1, f3, 8.0);   // |b| = 8
  builder.add_edge(f2, f4, 12.0);  // |c| = 12
  builder.add_edge(f2, f5, 7.0);   // |d| = 7

  mec::UserApp app;
  app.graph = builder.build();
  app.unoffloadable = {true, false, false, false, false};  // pin f1

  mec::SystemParams params;  // defaults: p_t >> p_c, fast server
  mec::MecSystem system{params, {app}};

  mec::PipelineOptions options;
  options.backend = mec::CutBackend::kSpectral;
  options.propagation.coupling_threshold = 20.0;
  mec::PipelineOffloader offloader(options);

  const mec::OffloadingScheme scheme = offloader.solve(system);
  const mec::SystemCost cost = mec::evaluate(system, scheme);

  const char* names[] = {"f1", "f2", "f3", "f4", "f5"};
  std::printf("offloading scheme (algorithm: %s):\n",
              offloader.name().c_str());
  for (std::size_t i = 0; i < 5; ++i)
    std::printf("  %s -> %s\n", names[i],
                scheme.placement[0][i] == mec::Placement::kLocal
                    ? "mobile device"
                    : "edge server");

  const mec::UserCost& u = cost.users[0];
  std::printf("\ncosts:\n");
  std::printf("  local compute time  t_c = %.3f\n", u.local_compute_time);
  std::printf("  remote compute time t_s = %.3f (+ wait %.3f)\n",
              u.remote_compute_time, u.wait_time);
  std::printf("  transmission time   t_t = %.3f\n", u.transmit_time);
  std::printf("  local energy        e_c = %.3f\n", u.local_energy);
  std::printf("  transmission energy e_t = %.3f\n", u.transmit_energy);
  std::printf("  objective E + T         = %.3f\n", cost.objective());
  return 0;
}
