// Arrival dynamics: users join and leave a campus edge server over the
// day; the adaptive coordinator places each arrival incrementally
// (existing sessions undisturbed) and reoptimizes in quiet windows.
//
// Demonstrates: AdaptiveCoordinator (frozen-arrival placement, drift
// tracking, commit-if-better reoptimization) and how contention shapes
// what late arrivals can offload.
//
// Run:  ./arrival_dynamics
#include <cstdio>

#include "appmodel/synthetic_apps.hpp"
#include "graph/generators.hpp"
#include "mec/adaptive.hpp"

int main() {
  using namespace mecoff;

  mec::SystemParams params;
  params.mobile_power = 1.0;
  params.transmit_power = 12.0;
  params.bandwidth = 15.0;
  params.mobile_capacity = 5.0;
  params.server_capacity = 80.0;
  params.contention_factor = 0.05;

  mec::AdaptiveCoordinator coordinator(params);

  const auto make_user = [](std::uint64_t seed) {
    graph::NetgenParams gp;
    gp.nodes = 80;
    gp.edges = 320;
    gp.seed = seed;
    mec::UserApp user;
    user.graph = graph::netgen_style(gp);
    user.unoffloadable.assign(80, false);
    user.unoffloadable[0] = true;
    return user;
  };
  const auto remote_share = [&](std::size_t id) {
    std::size_t remote = 0;
    const auto& placement = coordinator.placement_of(id);
    for (const mec::Placement p : placement)
      if (p == mec::Placement::kRemote) ++remote;
    return 100.0 * static_cast<double>(remote) /
           static_cast<double>(placement.size());
  };

  std::printf("%-22s | %-6s | %-10s | %-11s | %s\n", "event", "users",
              "objective", "drift", "note");

  // Morning: the crowd builds up.
  std::vector<std::size_t> ids;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ids.push_back(coordinator.add_user(make_user(400 + i)));
    if (i == 0 || i == 4 || i == 9)
      std::printf("arrival #%-13llu | %-6zu | %10.1f | %11.2f | newcomer "
                  "offloads %.0f%%\n",
                  static_cast<unsigned long long>(i + 1),
                  coordinator.active_users(),
                  coordinator.current_cost().objective(),
                  coordinator.drift(), remote_share(ids.back()));
  }

  // Lunch lull: a third of the users leave; placements are stale now.
  for (std::size_t i = 0; i < 3; ++i) coordinator.remove_user(ids[i]);
  std::printf("%-22s | %-6zu | %10.1f | %11.2f | departures free the "
              "server\n",
              "3 departures", coordinator.active_users(),
              coordinator.current_cost().objective(), coordinator.drift());

  // Maintenance window: collect the drift.
  const double gained = coordinator.reoptimize();
  std::printf("%-22s | %-6zu | %10.1f | %11.2f | reclaimed %.2f objective\n",
              "reoptimize", coordinator.active_users(),
              coordinator.current_cost().objective(), coordinator.drift(),
              gained);

  // Afternoon wave.
  for (std::uint64_t i = 0; i < 5; ++i)
    ids.push_back(coordinator.add_user(make_user(500 + i)));
  std::printf("%-22s | %-6zu | %10.1f | %11.2f | late arrivals offload "
              "%.0f%% (contention)\n",
              "5 more arrivals", coordinator.active_users(),
              coordinator.current_cost().objective(), coordinator.drift(),
              remote_share(ids.back()));
  return 0;
}
