// Channel-aware what-if study: the same application solved under each
// deployment profile (Wi-Fi campus, LTE small cell, mmWave hotspot,
// congested venue), then stress-tested on a fading radio.
//
// Demonstrates: parameter profiles, scheme sensitivity to the radio
// (how many functions offload per profile), and the Gilbert–Elliott
// channel in the batch simulator.
//
// Run:  ./channel_aware
#include <cstdio>

#include "appmodel/synthetic_apps.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "mec/profiles.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace mecoff;

  const appmodel::Application app = appmodel::make_voice_assistant_app();
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();

  std::printf("application '%s': %zu functions\n\n", app.name().c_str(),
              app.num_functions());
  std::printf("%-18s | %-9s | %-10s | %-12s | %-16s | %s\n", "profile",
              "offloaded", "E (solve)", "E (fading)", "energy inflation",
              "makespan (fading)");

  for (const mec::NamedProfile& profile : mec::all_profiles()) {
    mec::MecSystem system{profile.params, {user}};
    mec::PipelineOptions options;
    options.propagation.coupling_threshold = 50.0;
    mec::PipelineOffloader offloader(options);
    const mec::OffloadingScheme scheme = offloader.solve(system);
    const mec::SystemCost analytic = mec::evaluate(system, scheme);

    // Stress on a fading radio: bad state at 20% of the nominal rate.
    sim::SimOptions fading;
    sim::ChannelModel channel;
    channel.good_rate = profile.params.bandwidth;
    channel.bad_rate = profile.params.bandwidth * 0.2;
    channel.mean_good = 2.0;
    channel.mean_bad = 1.0;
    channel.seed = 7;
    fading.channel = channel;
    const sim::SimReport realized =
        sim::simulate_scheme(system, scheme, fading);

    std::printf("%-18s | %3zu/%-5zu | %10.2f | %12.2f | %15.3fx | %.3f\n",
                profile.name.c_str(), scheme.remote_count(0),
                app.num_functions(), analytic.total_energy,
                realized.total_energy,
                realized.total_energy /
                    std::max(analytic.total_energy, 1e-12),
                realized.makespan);
  }

  std::printf(
      "\nReading: the pipeline lands on the same placement here — the "
      "pinned wake-word boundary\nis narrow (small text/audio payloads), "
      "so offloading the whole ASR+NLU stack survives\neven the priciest "
      "radio. What changes per profile is the BILL: the congested venue "
      "pays\n~15x the mmWave hotspot for the identical scheme, and "
      "fading inflates exactly the\nprofiles whose radio time already "
      "dominates (1.47x at the venue vs 1.00x on mmWave,\nwhose transfers "
      "fit inside one good-state dwell).\n");
  return 0;
}
