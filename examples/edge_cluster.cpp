// Edge-cluster scenario: a city block served by several heterogeneous
// edge boxes (one big well-connected box, two small ones), beyond the
// paper's single-server model.
//
// Demonstrates: the multi-server offloader (capacity-weighted user
// attachment + per-server pipeline + rebalancing), and per-function
// task-DAG simulation of the winning scheme for one user.
//
// Run:  ./edge_cluster [users=<n>]
#include <cstdio>

#include "appmodel/synthetic_apps.hpp"
#include "common/config.hpp"
#include "mec/multiserver.hpp"
#include "sim/dag_executor.hpp"

int main(int argc, char** argv) {
  using namespace mecoff;

  const Config cfg = Config::from_args(argc, argv);
  const std::size_t users =
      static_cast<std::size_t>(cfg.get_int("users", 24));

  // Application mix from the appmodel library.
  std::vector<appmodel::Application> apps;
  std::vector<mec::UserApp> user_apps;
  for (std::size_t i = 0; i < users; ++i) {
    appmodel::Application app =
        i % 3 == 0   ? appmodel::make_face_recognition_app()
        : i % 3 == 1 ? appmodel::make_ar_game_app()
                     : appmodel::make_video_analytics_app();
    mec::UserApp user;
    user.graph = app.to_graph();
    user.unoffloadable = app.unoffloadable_mask();
    user.components = app.component_ids();
    user_apps.push_back(std::move(user));
    apps.push_back(std::move(app));
  }

  mec::MultiServerSystem system;
  system.device.mobile_power = 1.0;
  system.device.mobile_capacity = 4.0;
  system.device.contention_factor = 0.5;
  // One beefy box with a fat pipe, two small boxes on slower links.
  system.servers = {mec::ServerSpec{400.0, 40.0, 8.0},
                    mec::ServerSpec{120.0, 15.0, 8.0},
                    mec::ServerSpec{120.0, 15.0, 8.0}};
  system.users = user_apps;

  mec::MultiServerOptions options;
  options.pipeline.propagation.coupling_threshold = 50.0;
  options.rebalance_rounds = 3;
  mec::MultiServerOffloader offloader(options);
  const mec::MultiServerResult result = offloader.solve(system);

  std::printf("%zu users over %zu edge servers\n", users,
              system.servers.size());
  std::printf("objective E+T = %.2f (E = %.2f, T = %.2f), rebalance "
              "moves: %zu\n\n",
              result.objective(), result.total_energy, result.total_time,
              result.rebalance_moves);

  std::printf("%-8s | %-10s | %-12s | %s\n", "server", "capacity",
              "users", "remote load");
  for (std::size_t s = 0; s < system.servers.size(); ++s) {
    std::size_t count = 0;
    for (const std::size_t home : result.server_of_user)
      if (home == s) ++count;
    std::printf("S%-7zu | %-10.0f | %-12zu | %.0f\n", s,
                system.servers[s].capacity, count, result.server_load[s]);
  }

  // Task-level replay of user 0's schedule on its home server.
  const std::size_t u0 = 0;
  const std::size_t home = result.server_of_user[u0];
  mec::MecSystem solo;
  solo.params = system.device;
  solo.params.server_capacity = system.servers[home].capacity;
  solo.params.bandwidth = system.servers[home].bandwidth;
  solo.params.transmit_power = system.servers[home].transmit_power;
  solo.users = {system.users[u0]};
  mec::OffloadingScheme solo_scheme;
  solo_scheme.placement = {result.scheme.placement[u0]};
  const auto dag = sim::execute_dag(solo, {apps[u0]}, solo_scheme);
  if (dag.ok()) {
    std::printf("\nuser 0 ('%s', attached to S%zu) task schedule:\n",
                apps[u0].name().c_str(), home);
    for (const sim::TaskTrace& t : dag.value().users[0].tasks)
      std::printf("  [%7.3f, %7.3f] %-18s on %s\n", t.start, t.finish,
                  apps[u0].function(t.function).name.c_str(),
                  t.remote ? "server" : "device");
    std::printf("makespan: %.3f\n", dag.value().users[0].makespan);
  }
  return 0;
}
